//! The paper's random-access test harness workload (§VI.A).
//!
//! "The test application has the ability to generate a randomized stream
//! of mixed reads and writes of varying block sizes against a specified
//! HMC device configuration. The randomness is driven via a simple linear
//! congruential method provided by the GNU libc library. … The tests were
//! executed using 33,554,432 64-byte memory requests where the read/write
//! mixture was 50/50. The resulting memory pattern is similar to a
//! parallel random number sort of 2GB of data."

use hmc_types::BlockSize;

use crate::lcg::GlibcRandom;
use crate::op::{MemOp, OpKind, Workload};

/// Number of requests in the paper's §VI runs.
pub const PAPER_REQUESTS: u64 = 33_554_432;

/// Working set of the paper's §VI runs (2 GiB).
pub const PAPER_WORKING_SET: u64 = 2 << 30;

/// Uniform random reads/writes over a working set.
#[derive(Debug, Clone)]
pub struct RandomAccess {
    rng: GlibcRandom,
    working_set: u64,
    block: BlockSize,
    read_percent: u8,
    total: u64,
    issued: u64,
    posted_writes: bool,
}

impl RandomAccess {
    /// A random-access stream of `total` requests of `block` bytes over
    /// `working_set` bytes, with `read_percent`% reads.
    ///
    /// # Panics
    /// Panics if the working set is smaller than one block or
    /// `read_percent > 100`.
    pub fn new(
        seed: u32,
        working_set: u64,
        block: BlockSize,
        read_percent: u8,
        total: u64,
    ) -> Self {
        assert!(
            working_set >= block.bytes() as u64,
            "working set must hold at least one block"
        );
        assert!(read_percent <= 100, "read percentage out of range");
        RandomAccess {
            rng: GlibcRandom::new(seed),
            working_set,
            block,
            read_percent,
            total,
            issued: 0,
            posted_writes: false,
        }
    }

    /// The paper's exact configuration: 33,554,432 64-byte requests,
    /// 50/50 read/write, over a 2 GiB working set.
    ///
    /// # Examples
    ///
    /// ```
    /// use hmc_workloads::{RandomAccess, Workload};
    ///
    /// let mut w = RandomAccess::paper(1);
    /// assert_eq!(w.len_hint(), Some(33_554_432));
    /// let op = w.next_op().unwrap();
    /// assert_eq!(op.addr % 64, 0, "block-aligned addresses");
    /// ```
    pub fn paper(seed: u32) -> Self {
        RandomAccess::new(seed, PAPER_WORKING_SET, BlockSize::B64, 50, PAPER_REQUESTS)
    }

    /// The paper configuration scaled down by `factor` (for CI-friendly
    /// runs: requests divide, the working set stays 2 GiB).
    pub fn paper_scaled(seed: u32, factor: u64) -> Self {
        let mut w = Self::paper(seed);
        w.total = (PAPER_REQUESTS / factor.max(1)).max(1);
        w
    }

    /// Use posted writes instead of acknowledged writes (ablations).
    pub fn with_posted_writes(mut self, posted: bool) -> Self {
        self.posted_writes = posted;
        self
    }

    /// Ops issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl Workload for RandomAccess {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.issued >= self.total {
            return None;
        }
        self.issued += 1;
        let blocks = self.working_set / self.block.bytes() as u64;
        let addr = self.rng.below(blocks) * self.block.bytes() as u64;
        let kind = if self.rng.percent(self.read_percent) {
            OpKind::Read
        } else if self.posted_writes {
            OpKind::PostedWrite
        } else {
            OpKind::Write
        };
        Some(MemOp {
            kind,
            addr,
            size: self.block,
        })
    }

    fn name(&self) -> &'static str {
        "random-access"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_section_six() {
        let w = RandomAccess::paper(1);
        assert_eq!(w.len_hint(), Some(33_554_432));
        assert_eq!(w.block, BlockSize::B64);
        assert_eq!(w.read_percent, 50);
        assert_eq!(w.working_set, 2 << 30);
    }

    #[test]
    fn emits_exactly_total_ops() {
        let mut w = RandomAccess::new(1, 1 << 20, BlockSize::B64, 50, 100);
        let mut n = 0;
        while w.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert!(w.next_op().is_none(), "exhausted stays exhausted");
    }

    #[test]
    fn addresses_are_block_aligned_and_in_range() {
        let mut w = RandomAccess::new(2, 1 << 20, BlockSize::B64, 50, 1000);
        while let Some(op) = w.next_op() {
            assert_eq!(op.addr % 64, 0);
            assert!(op.addr < (1 << 20));
        }
    }

    #[test]
    fn mix_ratio_is_respected() {
        let mut w = RandomAccess::new(3, 1 << 20, BlockSize::B64, 50, 10_000);
        let mut reads = 0;
        let mut writes = 0;
        while let Some(op) = w.next_op() {
            match op.kind {
                OpKind::Read => reads += 1,
                OpKind::Write => writes += 1,
                other => panic!("unexpected kind {other:?}"),
            }
        }
        assert!((4_000..6_000).contains(&reads), "reads={reads}");
        assert_eq!(reads + writes, 10_000);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = RandomAccess::new(9, 1 << 20, BlockSize::B64, 50, 50);
        let mut b = RandomAccess::new(9, 1 << 20, BlockSize::B64, 50, 50);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn addresses_cover_working_sets_beyond_2gib() {
        // 8-link/8GB devices need addresses above 2^31; the 62-bit
        // composition must reach them.
        let mut w = RandomAccess::new(5, 8 << 30, BlockSize::B64, 0, 40_000);
        let mut above = 0u64;
        while let Some(op) = w.next_op() {
            assert!(op.addr < (8u64 << 30));
            if op.addr >= (2u64 << 30) {
                above += 1;
            }
        }
        assert!(above > 10_000, "only {above} addresses above 2 GiB");
    }

    #[test]
    fn posted_mode_swaps_write_kind() {
        let mut w =
            RandomAccess::new(4, 1 << 20, BlockSize::B64, 0, 10).with_posted_writes(true);
        while let Some(op) = w.next_op() {
            assert_eq!(op.kind, OpKind::PostedWrite);
        }
    }

    #[test]
    fn scaled_paper_run_divides_request_count() {
        let w = RandomAccess::paper_scaled(1, 16);
        assert_eq!(w.len_hint(), Some(33_554_432 / 16));
        let w = RandomAccess::paper_scaled(1, 0);
        assert_eq!(w.len_hint(), Some(33_554_432));
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn tiny_working_set_rejected() {
        RandomAccess::new(1, 32, BlockSize::B64, 50, 1);
    }
}
