//! Adversarial RowHammer workload: double-sided hammering of one bank.
//!
//! Classic double-sided RowHammer alternates activations of the two
//! aggressor rows physically flanking a victim row, maximizing the
//! disturbance per refresh window while every access looks like an
//! ordinary read. This workload reproduces that pattern through the
//! device's low-interleave address map: all traffic targets a single
//! `(vault, bank)`, ping-ponging between rows `victim - 1` and
//! `victim + 1` so each access closes the other aggressor's row and
//! forces a fresh activation (a row buffer would otherwise absorb the
//! stream as hits). Every `VICTIM_READ_PERIOD`-th request reads the
//! victim row itself, so any injected corruption surfaces in response
//! data the host (or a conformance oracle) can check end to end.
//!
//! The stream is a pure function of its parameters — no RNG — so runs
//! are reproducible by construction, like the rest of the suite.

use hmc_types::address::{AddressMap, DecodedAddr, LowInterleaveMap, MapGeometry};
use hmc_types::{BlockSize, HmcError, Result, VaultId};

use crate::op::{MemOp, OpKind, Workload};

/// One in this many requests reads the victim row (the rest hammer the
/// aggressors).
pub const VICTIM_READ_PERIOD: u64 = 16;

/// Double-sided RowHammer: alternating reads of the rows flanking a
/// victim, all within one bank.
#[derive(Debug, Clone)]
pub struct Hammer {
    map: LowInterleaveMap,
    block: BlockSize,
    vault: VaultId,
    bank: u16,
    victim_row: u64,
    total: u64,
    issued: u64,
}

impl Hammer {
    /// A double-sided hammer stream of `total` reads of `block` bytes
    /// against `(vault, bank)` of `geometry`, disturbing `victim_row`.
    ///
    /// Fails with [`HmcError::InvalidConfig`] if the vault or bank is out
    /// of range, or if `victim_row` is not an interior row (double-sided
    /// hammering needs both neighbors to exist).
    pub fn new(
        geometry: MapGeometry,
        block: BlockSize,
        vault: VaultId,
        bank: u16,
        victim_row: u64,
        total: u64,
    ) -> Result<Self> {
        if vault >= geometry.vaults {
            return Err(HmcError::InvalidConfig(format!(
                "hammer vault {vault} out of range for a {}-vault device",
                geometry.vaults
            )));
        }
        if bank >= geometry.banks {
            return Err(HmcError::InvalidConfig(format!(
                "hammer bank {bank} out of range for {}-bank vaults",
                geometry.banks
            )));
        }
        if victim_row == 0 || victim_row + 1 >= geometry.rows {
            return Err(HmcError::InvalidConfig(format!(
                "hammer victim row {victim_row} must be interior to 0..{} \
                 (double-sided hammering needs both neighbors)",
                geometry.rows
            )));
        }
        Ok(Hammer {
            map: LowInterleaveMap::new(geometry)?,
            block,
            vault,
            bank,
            victim_row,
            total,
            issued: 0,
        })
    }

    /// The interior row under attack.
    pub fn victim_row(&self) -> u64 {
        self.victim_row
    }

    /// The two aggressor rows flanking the victim.
    pub fn aggressor_rows(&self) -> (u64, u64) {
        (self.victim_row - 1, self.victim_row + 1)
    }

    fn addr_of(&self, row: u64) -> u64 {
        self.map
            .encode(DecodedAddr {
                vault: self.vault,
                bank: self.bank,
                row,
                offset: 0,
            })
            .expect("fields validated within geometry bounds")
            .raw()
    }
}

impl Workload for Hammer {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.issued >= self.total {
            return None;
        }
        let i = self.issued;
        self.issued += 1;
        let row = if (i + 1).is_multiple_of(VICTIM_READ_PERIOD) {
            self.victim_row
        } else if i.is_multiple_of(2) {
            self.victim_row - 1
        } else {
            self.victim_row + 1
        };
        Some(MemOp {
            kind: OpKind::Read,
            addr: self.addr_of(row),
            size: self.block,
        })
    }

    fn name(&self) -> &'static str {
        "hammer"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::DeviceConfig;

    fn small_geometry() -> MapGeometry {
        DeviceConfig::small().geometry()
    }

    #[test]
    fn stream_alternates_aggressors_and_samples_the_victim() {
        let g = small_geometry();
        let map = LowInterleaveMap::new(g).unwrap();
        let mut w = Hammer::new(g, BlockSize::B64, 3, 2, 100, 64).unwrap();
        let mut rows = Vec::new();
        while let Some(op) = w.next_op() {
            assert_eq!(op.kind, OpKind::Read);
            let d = map.decode(hmc_types::PhysAddr::new(op.addr).unwrap()).unwrap();
            assert_eq!(d.vault, 3, "all traffic stays in the target vault");
            assert_eq!(d.bank, 2, "all traffic stays in the target bank");
            rows.push(d.row);
        }
        assert_eq!(rows.len(), 64);
        assert_eq!(&rows[..4], &[99, 101, 99, 101], "double-sided ping-pong");
        let victim_reads = rows.iter().filter(|&&r| r == 100).count();
        assert_eq!(victim_reads as u64, 64 / VICTIM_READ_PERIOD);
        assert!(rows.iter().all(|&r| (99..=101).contains(&r)));
    }

    #[test]
    fn identical_parameters_build_identical_streams() {
        let g = small_geometry();
        let mut a = Hammer::new(g, BlockSize::B64, 0, 0, 50, 40).unwrap();
        let mut b = Hammer::new(g, BlockSize::B64, 0, 0, 50, 40).unwrap();
        for _ in 0..40 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert_eq!(a.next_op(), None);
    }

    #[test]
    fn edge_and_out_of_range_targets_rejected() {
        let g = small_geometry();
        assert!(Hammer::new(g, BlockSize::B64, 99, 0, 100, 10).is_err());
        assert!(Hammer::new(g, BlockSize::B64, 0, 99, 100, 10).is_err());
        assert!(Hammer::new(g, BlockSize::B64, 0, 0, 0, 10).is_err(), "row 0 has no lower neighbor");
        assert!(Hammer::new(g, BlockSize::B64, 0, 0, g.rows - 1, 10).is_err());
        assert!(Hammer::new(g, BlockSize::B64, 0, 0, g.rows / 2, 10).is_ok());
    }

    #[test]
    fn aggressors_flank_the_victim() {
        let g = small_geometry();
        let w = Hammer::new(g, BlockSize::B64, 1, 1, 42, 10).unwrap();
        assert_eq!(w.victim_row(), 42);
        assert_eq!(w.aggressor_rows(), (41, 43));
    }
}
