//! A 2D five-point stencil sweep.
//!
//! Scientific kernels like Jacobi relaxation read a cell's four neighbours
//! and write the cell. Mapped onto an HMC device, row-neighbour reads hit
//! adjacent interleave positions while column neighbours land `width`
//! blocks away — a structured mix of locality and conflict that
//! complements the random and streaming workloads.

use hmc_types::BlockSize;

use crate::op::{MemOp, Workload};

/// A five-point stencil sweep over a `width × height` grid of blocks.
#[derive(Debug, Clone)]
pub struct Stencil {
    width: u64,
    height: u64,
    block: BlockSize,
    x: u64,
    y: u64,
    phase: u8,
    sweeps_left: u64,
    done: bool,
}

impl Stencil {
    /// A stencil over a `width × height` grid of `block`-sized cells,
    /// swept `sweeps` times. Interior cells only (borders are skipped),
    /// so both dimensions must be at least 3.
    ///
    /// # Panics
    /// Panics if either dimension is below 3 or `sweeps` is zero.
    pub fn new(width: u64, height: u64, block: BlockSize, sweeps: u64) -> Self {
        assert!(width >= 3 && height >= 3, "grid must be at least 3x3");
        assert!(sweeps > 0, "at least one sweep");
        Stencil {
            width,
            height,
            block,
            x: 1,
            y: 1,
            phase: 0,
            sweeps_left: sweeps,
            done: false,
        }
    }

    fn cell_addr(&self, x: u64, y: u64) -> u64 {
        (y * self.width + x) * self.block.bytes() as u64
    }

    /// Total ops emitted over the whole run: 5 per interior cell per sweep.
    pub fn total_ops(&self) -> u64 {
        (self.width - 2) * (self.height - 2) * 5 * self.sweeps_left
    }
}

impl Workload for Stencil {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.done {
            return None;
        }
        let (x, y) = (self.x, self.y);
        let op = match self.phase {
            0 => MemOp::read(self.cell_addr(x - 1, y), self.block),
            1 => MemOp::read(self.cell_addr(x + 1, y), self.block),
            2 => MemOp::read(self.cell_addr(x, y - 1), self.block),
            3 => MemOp::read(self.cell_addr(x, y + 1), self.block),
            _ => MemOp::write(self.cell_addr(x, y), self.block),
        };
        self.phase += 1;
        if self.phase == 5 {
            self.phase = 0;
            self.x += 1;
            if self.x == self.width - 1 {
                self.x = 1;
                self.y += 1;
                if self.y == self.height - 1 {
                    self.y = 1;
                    self.sweeps_left -= 1;
                    if self.sweeps_left == 0 {
                        self.done = true;
                    }
                }
            }
        }
        Some(op)
    }

    fn name(&self) -> &'static str {
        "stencil-5pt"
    }

    fn len_hint(&self) -> Option<u64> {
        Some((self.width - 2) * (self.height - 2) * 5 * self.sweeps_left)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn one_interior_cell_emits_four_reads_then_a_write() {
        let mut s = Stencil::new(3, 3, BlockSize::B64, 1);
        let ops: Vec<MemOp> = std::iter::from_fn(|| s.next_op()).collect();
        assert_eq!(ops.len(), 5);
        assert!(ops[..4].iter().all(|o| o.kind == OpKind::Read));
        assert_eq!(ops[4].kind, OpKind::Write);
        // Cross around centre (1,1) on a 3-wide grid of 64-byte cells.
        assert_eq!(ops[0].addr, 3 * 64); // west
        assert_eq!(ops[1].addr, (3 + 2) * 64); // east
        assert_eq!(ops[2].addr, 64); // north
        assert_eq!(ops[3].addr, (2 * 3 + 1) * 64); // south
        assert_eq!(ops[4].addr, (3 + 1) * 64); // centre
    }

    #[test]
    fn op_count_matches_formula() {
        let mut s = Stencil::new(6, 5, BlockSize::B64, 2);
        let expect = (6 - 2) * (5 - 2) * 5 * 2;
        assert_eq!(s.len_hint(), Some(expect));
        let mut n = 0;
        while s.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, expect);
    }

    #[test]
    fn addresses_stay_inside_the_grid() {
        let mut s = Stencil::new(8, 8, BlockSize::B64, 1);
        while let Some(op) = s.next_op() {
            assert!(op.addr < 8 * 8 * 64);
        }
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn degenerate_grid_rejected() {
        Stencil::new(2, 8, BlockSize::B64, 1);
    }
}
