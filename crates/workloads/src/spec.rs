//! Named workload specifications.
//!
//! Every frontend that lets a user pick a workload by name — the `hmcsim`
//! CLI, the `loadgen` serving client, scripted experiments — needs the
//! same mapping from `(name, seed, working set, …)` to a concrete
//! generator. [`WorkloadSpec`] centralizes that mapping so the frontends
//! cannot drift apart: identical specs build identical (deterministic)
//! request streams.

use hmc_types::address::MapGeometry;
use hmc_types::{BlockSize, HmcError, QuadId, Result};

use crate::gups::{Gups, UpdateKind};
use crate::hammer::Hammer;
use crate::hotspot::{Hotspot, DEFAULT_HOT_PCT};
use crate::op::Workload;
use crate::pointer_chase::PointerChase;
use crate::random_access::RandomAccess;
use crate::stencil::Stencil;
use crate::stream::{Stream, StreamMode};

/// Names [`WorkloadSpec::build`] accepts, for help text and validation.
pub const WORKLOAD_NAMES: [&str; 7] =
    ["random", "stream", "gups", "chase", "stencil", "hotspot", "hammer"];

/// A by-name workload description that builds a deterministic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Generator name (one of [`WORKLOAD_NAMES`]).
    pub name: String,
    /// Deterministic seed (ignored by `stream` and `stencil`).
    pub seed: u32,
    /// Address range the workload touches, in bytes.
    pub working_set: u64,
    /// Request block size (reads/writes; atomics ignore it).
    pub block: BlockSize,
    /// Percentage of reads for the `random` mix (0..=100).
    pub read_pct: u8,
    /// Number of operations to generate.
    pub requests: u64,
    /// Device geometry for quad-aware generators (`hotspot` requires
    /// it; others ignore it).
    pub geometry: Option<MapGeometry>,
    /// Quad the `hotspot` generator concentrates on.
    pub hot_quad: QuadId,
    /// Percentage of `hotspot` requests aimed at the hot quad.
    pub hot_pct: u8,
    /// `(vault, bank)` the `hammer` generator attacks.
    pub hammer_target: (u16, u16),
    /// Victim row the `hammer` generator disturbs; `None` picks the
    /// middle row of the geometry at build time.
    pub hammer_row: Option<u64>,
}

impl WorkloadSpec {
    /// A spec with the harness defaults: `random`, 50% reads, 64-byte
    /// blocks, over `working_set` bytes.
    pub fn new(name: &str, seed: u32, working_set: u64, requests: u64) -> Self {
        WorkloadSpec {
            name: name.to_string(),
            seed,
            working_set,
            block: BlockSize::B64,
            read_pct: 50,
            requests,
            geometry: None,
            hot_quad: 0,
            hot_pct: DEFAULT_HOT_PCT,
            hammer_target: (0, 0),
            hammer_row: None,
        }
    }

    /// Replace the block size (builder style).
    pub fn with_block(mut self, block: BlockSize) -> Self {
        self.block = block;
        self
    }

    /// Replace the read percentage (builder style).
    pub fn with_read_pct(mut self, read_pct: u8) -> Self {
        self.read_pct = read_pct;
        self
    }

    /// Supply the device geometry quad-aware generators need (builder
    /// style).
    pub fn with_geometry(mut self, geometry: MapGeometry) -> Self {
        self.geometry = Some(geometry);
        self
    }

    /// Point the `hotspot` generator at `quad` with `hot_pct`% of the
    /// traffic (builder style).
    pub fn with_hotspot(mut self, quad: QuadId, hot_pct: u8) -> Self {
        self.hot_quad = quad;
        self.hot_pct = hot_pct;
        self
    }

    /// Point the `hammer` generator at `(vault, bank)`, disturbing
    /// `row` (builder style). `None` picks the geometry's middle row.
    pub fn with_hammer(mut self, vault: u16, bank: u16, row: Option<u64>) -> Self {
        self.hammer_target = (vault, bank);
        self.hammer_row = row;
        self
    }

    /// Build the generator this spec describes.
    ///
    /// Fails with [`HmcError::InvalidConfig`] on an unknown name or an
    /// out-of-range read percentage.
    pub fn build(&self) -> Result<Box<dyn Workload>> {
        if self.read_pct > 100 {
            return Err(HmcError::InvalidConfig(format!(
                "read_pct {} exceeds 100",
                self.read_pct
            )));
        }
        let ws = self.working_set.max(self.block.bytes() as u64);
        Ok(match self.name.as_str() {
            "random" => Box::new(RandomAccess::new(
                self.seed,
                ws,
                self.block,
                self.read_pct,
                self.requests,
            )),
            "stream" => Box::new(Stream::unit(ws, self.block, StreamMode::Copy, self.requests)),
            "gups" => Box::new(Gups::new(self.seed, ws, UpdateKind::Add16, self.requests)),
            "chase" => Box::new(PointerChase::new(
                self.seed as u64,
                ws.min(1 << 26),
                self.block,
                self.requests,
            )),
            "stencil" => {
                // Square-ish grid sized to roughly the requested op count.
                let cells = (self.requests / 5).max(9);
                let side = ((cells as f64).sqrt() as u64 + 2).max(3);
                Box::new(Stencil::new(side, side, self.block, 1))
            }
            "hotspot" => {
                let geometry = self.geometry.ok_or_else(|| {
                    HmcError::InvalidConfig(
                        "hotspot workload needs a device geometry \
                         (WorkloadSpec::with_geometry)"
                            .into(),
                    )
                })?;
                Box::new(Hotspot::new(
                    self.seed,
                    geometry,
                    self.block,
                    self.hot_quad,
                    self.hot_pct,
                    self.read_pct,
                    self.requests,
                )?)
            }
            "hammer" => {
                let geometry = self.geometry.ok_or_else(|| {
                    HmcError::InvalidConfig(
                        "hammer workload needs a device geometry \
                         (WorkloadSpec::with_geometry)"
                            .into(),
                    )
                })?;
                let (vault, bank) = self.hammer_target;
                let row = self.hammer_row.unwrap_or(geometry.rows / 2);
                Box::new(Hammer::new(
                    geometry,
                    self.block,
                    vault,
                    bank,
                    row,
                    self.requests,
                )?)
            }
            other => {
                return Err(HmcError::InvalidConfig(format!(
                    "unknown workload {other:?} (expected one of {WORKLOAD_NAMES:?})"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_named_workload_builds() {
        let geometry = hmc_types::DeviceConfig::small().geometry();
        for name in WORKLOAD_NAMES {
            let w = WorkloadSpec::new(name, 1, 1 << 24, 100)
                .with_geometry(geometry)
                .build();
            assert!(w.is_ok(), "{name}");
        }
        assert!(WorkloadSpec::new("bogus", 1, 1 << 24, 100).build().is_err());
    }

    #[test]
    fn hotspot_needs_a_geometry() {
        let bare = WorkloadSpec::new("hotspot", 1, 1 << 24, 100).build();
        assert!(bare.is_err(), "hotspot without geometry must be rejected");
        let geometry = hmc_types::DeviceConfig::small().geometry();
        let mut w = WorkloadSpec::new("hotspot", 1, 1 << 24, 100)
            .with_geometry(geometry)
            .with_hotspot(1, 95)
            .build()
            .unwrap();
        assert_eq!(w.name(), "hotspot");
        assert!(w.next_op().is_some());
    }

    #[test]
    fn identical_specs_build_identical_streams() {
        let spec = WorkloadSpec::new("random", 42, 1 << 24, 500).with_read_pct(30);
        let mut a = spec.build().unwrap();
        let mut b = spec.clone().build().unwrap();
        for i in 0..500 {
            assert_eq!(a.next_op(), b.next_op(), "op {i}");
        }
        assert_eq!(a.next_op(), None);
    }

    #[test]
    fn out_of_range_read_pct_is_rejected() {
        assert!(WorkloadSpec::new("random", 1, 1 << 20, 10)
            .with_read_pct(101)
            .build()
            .is_err());
    }

    #[test]
    fn tiny_working_sets_are_clamped_to_one_block() {
        let mut w = WorkloadSpec::new("random", 1, 1, 10).build().unwrap();
        assert!(w.next_op().is_some());
    }
}
