//! Trace-replay workloads.
//!
//! Records an operation stream to a simple CSV form (`kind,addr,size`)
//! and replays it later — the bridge between HMC-Sim and trace-driven
//! front-ends (CPU simulators, instrumentation traces) that the paper's
//! host-agnostic design targets ("attached to an arbitrary core
//! processor", abstract).

use std::io::{BufRead, Write};

use hmc_types::{BlockSize, HmcError, Result};

use crate::op::{MemOp, OpKind, Workload};

/// A workload replaying a recorded operation list.
#[derive(Debug, Clone)]
pub struct Replay {
    ops: Vec<MemOp>,
    idx: usize,
}

impl Replay {
    /// Replay an in-memory operation list.
    pub fn new(ops: Vec<MemOp>) -> Self {
        Replay { ops, idx: 0 }
    }

    /// Record another workload's full stream for later replay.
    pub fn record<W: Workload>(workload: &mut W) -> Self {
        let mut ops = Vec::new();
        while let Some(op) = workload.next_op() {
            ops.push(op);
        }
        Replay::new(ops)
    }

    /// Number of operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Reset to the beginning (re-runnable).
    pub fn rewind(&mut self) {
        self.idx = 0;
    }

    /// Serialize as CSV: `kind,addr,size` with a header line.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "kind,addr,size")?;
        for op in &self.ops {
            writeln!(w, "{},{:#x},{}", kind_name(op.kind), op.addr, op.size.bytes())?;
        }
        Ok(())
    }

    /// Parse the CSV form produced by [`Replay::write_csv`].
    ///
    /// Blank lines, `#`-prefixed comment lines (conformance repro files
    /// carry their provenance this way), and the `kind,addr,size` header
    /// are skipped wherever they appear.
    pub fn read_csv<R: BufRead>(r: R) -> Result<Self> {
        let mut ops = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line.map_err(|e| HmcError::Internal(format!("trace read: {e}")))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with("kind") {
                continue;
            }
            let mut parts = line.split(',');
            let (kind, addr, size) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
            );
            let kind = parse_kind(kind).ok_or_else(|| {
                HmcError::InvalidConfig(format!("trace line {lineno}: unknown kind {kind:?}"))
            })?;
            let addr = parse_addr(addr).ok_or_else(|| {
                HmcError::InvalidConfig(format!("trace line {lineno}: bad address {addr:?}"))
            })?;
            let size: usize = size.trim().parse().map_err(|_| {
                HmcError::InvalidConfig(format!("trace line {lineno}: bad size {size:?}"))
            })?;
            ops.push(MemOp {
                kind,
                addr,
                size: BlockSize::from_bytes(size)?,
            });
        }
        Ok(Replay::new(ops))
    }
}

fn kind_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Read => "RD",
        OpKind::Write => "WR",
        OpKind::PostedWrite => "P_WR",
        OpKind::TwoAdd8 => "2ADD8",
        OpKind::Add16 => "ADD16",
        OpKind::BitWrite => "BWR",
    }
}

fn parse_kind(s: &str) -> Option<OpKind> {
    Some(match s.trim() {
        "RD" => OpKind::Read,
        "WR" => OpKind::Write,
        "P_WR" => OpKind::PostedWrite,
        "2ADD8" => OpKind::TwoAdd8,
        "ADD16" => OpKind::Add16,
        "BWR" => OpKind::BitWrite,
        _ => return None,
    })
}

fn parse_addr(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl Workload for Replay {
    fn next_op(&mut self) -> Option<MemOp> {
        let op = self.ops.get(self.idx).copied();
        if op.is_some() {
            self.idx += 1;
        }
        op
    }

    fn name(&self) -> &'static str {
        "replay"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.ops.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_access::RandomAccess;

    #[test]
    fn replays_in_recorded_order() {
        let ops = vec![
            MemOp::read(0x40, BlockSize::B64),
            MemOp::write(0x80, BlockSize::B32),
        ];
        let mut r = Replay::new(ops.clone());
        assert_eq!(r.next_op(), Some(ops[0]));
        assert_eq!(r.next_op(), Some(ops[1]));
        assert_eq!(r.next_op(), None);
        r.rewind();
        assert_eq!(r.next_op(), Some(ops[0]));
    }

    #[test]
    fn records_another_workload_faithfully() {
        let mut source = RandomAccess::new(1, 1 << 20, BlockSize::B64, 50, 100);
        let mut replay = Replay::record(&mut source);
        assert_eq!(replay.len(), 100);
        let mut source2 = RandomAccess::new(1, 1 << 20, BlockSize::B64, 50, 100);
        for _ in 0..100 {
            assert_eq!(replay.next_op(), source2.next_op());
        }
    }

    #[test]
    fn csv_roundtrip_preserves_every_op() {
        let ops = vec![
            MemOp::read(0x1234, BlockSize::B128),
            MemOp::write(0, BlockSize::B16),
            MemOp {
                kind: OpKind::PostedWrite,
                addr: 0x3_0000_0000,
                size: BlockSize::B64,
            },
            MemOp {
                kind: OpKind::Add16,
                addr: 16,
                size: BlockSize::B16,
            },
            MemOp {
                kind: OpKind::TwoAdd8,
                addr: 32,
                size: BlockSize::B16,
            },
            MemOp {
                kind: OpKind::BitWrite,
                addr: 48,
                size: BlockSize::B16,
            },
        ];
        let r = Replay::new(ops.clone());
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let parsed = Replay::read_csv(&buf[..]).unwrap();
        assert_eq!(parsed.ops, ops);
    }

    #[test]
    fn csv_parse_rejects_garbage() {
        assert!(Replay::read_csv("kind,addr,size\nXX,0x0,64\n".as_bytes()).is_err());
        assert!(Replay::read_csv("kind,addr,size\nRD,zzz,64\n".as_bytes()).is_err());
        assert!(Replay::read_csv("kind,addr,size\nRD,0x0,63\n".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_and_header_are_skipped() {
        let parsed = Replay::read_csv("kind,addr,size\n\nRD,0x40,64\n\n".as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn comment_lines_are_skipped() {
        let text = "# hmc-conform reproduction\n# seed: 0x5eed\nkind,addr,size\nRD,0x40,64\n# trailing note\nWR,0x80,16\n";
        let parsed = Replay::read_csv(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }
}
