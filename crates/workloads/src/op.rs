//! Memory operations and the workload abstraction.
//!
//! A workload is a deterministic stream of [`MemOp`]s. The host driver
//! (`hmc-host`) turns each op into a compliant request packet, injects it
//! round-robin across host links until stalled, and clocks the simulation —
//! exactly the shape of the paper's §VI.A test application.

use hmc_types::{BlockSize, Command};

/// What an operation does at its target address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Memory read of `size` bytes.
    Read,
    /// Memory write of `size` bytes.
    Write,
    /// Posted (no-response) write of `size` bytes.
    PostedWrite,
    /// Dual 8-byte atomic add.
    TwoAdd8,
    /// 16-byte atomic add.
    Add16,
    /// Masked 8-byte bit-write.
    BitWrite,
}

/// One memory operation of a workload stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Operation class.
    pub kind: OpKind,
    /// Target physical address (block aligned by generators).
    pub addr: u64,
    /// Block size for reads/writes (atomics always move one FLIT).
    pub size: BlockSize,
}

impl MemOp {
    /// A read op.
    pub fn read(addr: u64, size: BlockSize) -> Self {
        MemOp {
            kind: OpKind::Read,
            addr,
            size,
        }
    }

    /// A write op.
    pub fn write(addr: u64, size: BlockSize) -> Self {
        MemOp {
            kind: OpKind::Write,
            addr,
            size,
        }
    }

    /// The HMC command this operation maps to.
    pub fn command(&self) -> Command {
        match self.kind {
            OpKind::Read => Command::Rd(self.size),
            OpKind::Write => Command::Wr(self.size),
            OpKind::PostedWrite => Command::PostedWr(self.size),
            OpKind::TwoAdd8 => Command::TwoAdd8,
            OpKind::Add16 => Command::Add16,
            OpKind::BitWrite => Command::Bwr,
        }
    }

    /// Request payload size in bytes for this operation.
    pub fn payload_bytes(&self) -> usize {
        self.command().request_data_bytes()
    }

    /// True when the device owes the host a response for this op.
    pub fn expects_response(&self) -> bool {
        self.command().response_command().is_some()
    }
}

/// A deterministic stream of memory operations.
pub trait Workload {
    /// The next operation, or `None` when the workload is exhausted.
    fn next_op(&mut self) -> Option<MemOp>;

    /// Human-readable workload name for reports.
    fn name(&self) -> &'static str;

    /// Total operations this workload will emit, when known in advance.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_map_to_commands() {
        assert_eq!(
            MemOp::read(0, BlockSize::B64).command(),
            Command::Rd(BlockSize::B64)
        );
        assert_eq!(
            MemOp::write(0, BlockSize::B32).command(),
            Command::Wr(BlockSize::B32)
        );
        let atomic = MemOp {
            kind: OpKind::Add16,
            addr: 0,
            size: BlockSize::B16,
        };
        assert_eq!(atomic.command(), Command::Add16);
    }

    #[test]
    fn payload_sizes_follow_commands() {
        assert_eq!(MemOp::read(0, BlockSize::B128).payload_bytes(), 0);
        assert_eq!(MemOp::write(0, BlockSize::B128).payload_bytes(), 128);
        let bwr = MemOp {
            kind: OpKind::BitWrite,
            addr: 0,
            size: BlockSize::B64,
        };
        assert_eq!(bwr.payload_bytes(), 16, "atomics carry one FLIT");
    }

    #[test]
    fn posted_writes_expect_no_response() {
        let posted = MemOp {
            kind: OpKind::PostedWrite,
            addr: 0,
            size: BlockSize::B64,
        };
        assert!(!posted.expects_response());
        assert!(MemOp::write(0, BlockSize::B64).expects_response());
        assert!(MemOp::read(0, BlockSize::B64).expects_response());
    }
}
