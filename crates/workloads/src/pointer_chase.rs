//! Pointer-chasing workload: dependent random reads.
//!
//! Each read's address is derived from the previous one through a full-
//! period permutation, so only one request is logically in flight at a
//! time — the latency-bound opposite of the paper's bandwidth-bound
//! random-access harness, and a useful probe of the per-request path
//! through crossbar, vault and response queues.

use hmc_types::BlockSize;

use crate::op::{MemOp, Workload};

/// Dependent reads following a pseudo-random block permutation.
#[derive(Debug, Clone)]
pub struct PointerChase {
    current_block: u64,
    num_blocks: u64,
    block: BlockSize,
    total: u64,
    issued: u64,
}

impl PointerChase {
    /// A chase of `total` dependent reads over `range` bytes.
    ///
    /// `range / block` must be a power of two so the multiplicative step
    /// `next = (5·cur + 1) mod blocks` is a full-period permutation (a
    /// Hull–Dobell LCG over a power-of-two modulus).
    ///
    /// # Panics
    /// Panics if the block count is not a power of two or is zero.
    pub fn new(seed: u64, range: u64, block: BlockSize, total: u64) -> Self {
        let num_blocks = range / block.bytes() as u64;
        assert!(
            num_blocks.is_power_of_two(),
            "block count must be a power of two for a full-period chase"
        );
        PointerChase {
            current_block: seed % num_blocks,
            num_blocks,
            block,
            total,
            issued: 0,
        }
    }

    /// Whether all emitted addresses so far were distinct is guaranteed
    /// for up to `num_blocks` steps; expose the period for callers.
    pub fn period(&self) -> u64 {
        self.num_blocks
    }
}

impl Workload for PointerChase {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.issued >= self.total {
            return None;
        }
        self.issued += 1;
        let addr = self.current_block * self.block.bytes() as u64;
        // Hull–Dobell: a ≡ 1 (mod 4), c odd → full period over 2^k.
        self.current_block = (self.current_block.wrapping_mul(5).wrapping_add(1)) % self.num_blocks;
        Some(MemOp::read(addr, self.block))
    }

    fn name(&self) -> &'static str {
        "pointer-chase"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_reads_in_range() {
        let mut p = PointerChase::new(0, 1 << 16, BlockSize::B64, 100);
        while let Some(op) = p.next_op() {
            assert!(op.addr < (1 << 16));
            assert_eq!(op.addr % 64, 0);
        }
    }

    #[test]
    fn chase_has_full_period() {
        let blocks = 256u64;
        let mut p = PointerChase::new(0, blocks * 64, BlockSize::B64, blocks);
        let mut seen = std::collections::HashSet::new();
        while let Some(op) = p.next_op() {
            assert!(seen.insert(op.addr), "address repeated within the period");
        }
        assert_eq!(seen.len() as u64, blocks);
    }

    #[test]
    fn deterministic_chain() {
        let mut a = PointerChase::new(7, 1 << 14, BlockSize::B64, 50);
        let mut b = PointerChase::new(7, 1 << 14, BlockSize::B64, 50);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_range_rejected() {
        PointerChase::new(0, 3 * 64, BlockSize::B64, 1);
    }
}
