//! GNU libc compatible pseudo-random number generation.
//!
//! The paper's random-access test harness drives its address stream with
//! "a simple linear congruential method provided by the GNU libc library"
//! (§VI.A). This module re-implements both glibc generators so workloads
//! are reproducible without linking libc:
//!
//! * [`GlibcRand`] — the TYPE_0 linear congruential generator used by
//!   `rand()` when seeded with a 8-byte state (`x' = x·1103515245 + 12345
//!   mod 2³¹`);
//! * [`GlibcRandom`] — the TYPE_3 additive-feedback generator glibc uses
//!   by default (`r[i] = r[i-3] + r[i-31]`, output shifted right by one),
//!   including glibc's exact seeding procedure.

/// The glibc TYPE_0 linear congruential generator.
///
/// **Low-bit caveat:** a power-of-two-modulus LCG's bit *k* cycles with
/// period `2^(k+1)`; in particular the low eight bits form a full-period
/// LCG mod 256, so any 256 *consecutive* outputs are pairwise distinct
/// mod 256. Address streams built from `next_i31() % blocks` therefore
/// round-robin vaults and banks perfectly and exhibit **zero** bank
/// conflicts — an artifact, not memory-system behaviour. Workloads use
/// [`GlibcRandom`] (glibc's actual default `rand()` generator) instead;
/// this generator is kept for the ablation that demonstrates the effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlibcRand {
    state: u32,
}

impl GlibcRand {
    /// Seed the generator (glibc maps seed 0 to 1).
    pub fn new(seed: u32) -> Self {
        GlibcRand {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Next value in `0..2^31` — the glibc TYPE_0 `rand()` output.
    pub fn next_i31(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(1_103_515_245)
            .wrapping_add(12_345)
            & 0x7fff_ffff;
        self.state
    }

    /// Compose two draws into a 62-bit value (addresses beyond 2 GiB).
    pub fn next_u62(&mut self) -> u64 {
        ((self.next_i31() as u64) << 31) | self.next_i31() as u64
    }

    /// Uniform-ish value in `0..n` by modulo reduction, matching the
    /// idiomatic `rand() % n` of the C harness.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "modulus must be nonzero");
        if n <= (1 << 31) {
            self.next_i31() as u64 % n
        } else {
            self.next_u62() % n
        }
    }

    /// A coin flip with `percent` (0–100) probability of `true` — the
    /// harness's read/write mix selector.
    pub fn percent(&mut self, percent: u8) -> bool {
        (self.next_i31() % 100) < percent as u32
    }
}

/// The glibc TYPE_3 additive-feedback generator (default `random()`).
#[derive(Debug, Clone)]
pub struct GlibcRandom {
    r: [u32; 31],
    f: usize,
    rear: usize,
}

impl GlibcRandom {
    /// Seed exactly as glibc's `srandom` does for TYPE_3 state.
    pub fn new(seed: u32) -> Self {
        let mut r = [0u32; 31];
        r[0] = if seed == 0 { 1 } else { seed };
        for i in 1..31 {
            // r[i] = (16807 * r[i-1]) % 2147483647, computed via
            // Schrage's method exactly as in glibc to avoid overflow.
            let prev = r[i - 1] as i64;
            let hi = prev / 127_773;
            let lo = prev % 127_773;
            let mut word = 16_807 * lo - 2_836 * hi;
            if word < 0 {
                word += 2_147_483_647;
            }
            r[i] = word as u32;
        }
        let mut g = GlibcRandom { r, f: 3, rear: 0 };
        // glibc discards the first 310 outputs to decorrelate the seed.
        for _ in 0..310 {
            g.next_i31();
        }
        g
    }

    /// Next value in `0..2^31`.
    pub fn next_i31(&mut self) -> u32 {
        let val = self.r[self.f].wrapping_add(self.r[self.rear]);
        self.r[self.f] = val;
        self.f = (self.f + 1) % 31;
        self.rear = (self.rear + 1) % 31;
        val >> 1
    }

    /// Compose two draws into a 62-bit value.
    pub fn next_u62(&mut self) -> u64 {
        ((self.next_i31() as u64) << 31) | self.next_i31() as u64
    }

    /// Uniform-ish value in `0..n` by modulo reduction (`random() % n`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "modulus must be nonzero");
        if n <= (1 << 31) {
            self.next_i31() as u64 % n
        } else {
            self.next_u62() % n
        }
    }

    /// A coin flip with `percent` (0–100) probability of `true`.
    pub fn percent(&mut self, percent: u8) -> bool {
        (self.next_i31() % 100) < percent as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type0_matches_the_reference_recurrence() {
        let mut g = GlibcRand::new(1);
        // x1 = (1*1103515245 + 12345) mod 2^31
        let expect1 = (1_103_515_245u64 + 12_345) as u32 & 0x7fff_ffff;
        assert_eq!(g.next_i31(), expect1);
        let expect2 =
            ((expect1 as u64 * 1_103_515_245 + 12_345) & 0x7fff_ffff) as u32;
        assert_eq!(g.next_i31(), expect2);
    }

    #[test]
    fn zero_seed_maps_to_one() {
        let mut a = GlibcRand::new(0);
        let mut b = GlibcRand::new(1);
        assert_eq!(a.next_i31(), b.next_i31());
    }

    #[test]
    fn outputs_stay_in_31_bits() {
        let mut g = GlibcRand::new(42);
        for _ in 0..1000 {
            assert!(g.next_i31() < (1 << 31));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = GlibcRand::new(7);
        for _ in 0..1000 {
            assert!(g.below(10) < 10);
            assert!(g.below(1 << 33) < (1 << 33));
        }
    }

    #[test]
    fn percent_mix_is_roughly_calibrated() {
        let mut g = GlibcRand::new(99);
        let hits = (0..10_000).filter(|_| g.percent(50)).count();
        assert!(
            (4_000..6_000).contains(&hits),
            "50% mix produced {hits}/10000"
        );
        let all = (0..1000).filter(|_| g.percent(100)).count();
        assert_eq!(all, 1000);
        let none = (0..1000).filter(|_| g.percent(0)).count();
        assert_eq!(none, 0);
    }

    #[test]
    fn type3_is_deterministic_per_seed() {
        let mut a = GlibcRandom::new(1);
        let mut b = GlibcRandom::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_i31(), b.next_i31());
        }
        let mut c = GlibcRandom::new(2);
        let differs = (0..100).any(|_| a.next_i31() != c.next_i31());
        assert!(differs, "different seeds must diverge");
    }

    #[test]
    fn type3_known_first_value_for_seed_1() {
        // glibc random() with srandom(1) famously yields 1804289383 first.
        let mut g = GlibcRandom::new(1);
        assert_eq!(g.next_i31(), 1_804_289_383);
    }

    #[test]
    fn type3_outputs_stay_in_31_bits() {
        let mut g = GlibcRandom::new(12345);
        for _ in 0..1000 {
            assert!(g.next_i31() < (1 << 31));
        }
    }

    #[test]
    fn u62_composition_covers_wide_ranges() {
        let mut g = GlibcRand::new(3);
        let max = (0..1000).map(|_| g.next_u62()).max().unwrap();
        assert!(max > (1 << 40), "62-bit composition should exceed 2^40");
    }
}
