//! Workload address profiling.
//!
//! Before committing to a long simulation, it is useful to know where a
//! workload's addresses land: which vaults and banks it exercises under a
//! given interleave map, how balanced the distribution is, and how large
//! the touched footprint is. The profiler answers exactly the questions
//! the paper's §VI analysis asks of its trace data — vault and bank
//! utilization — but statically, from the op stream alone.

use std::collections::HashSet;

use hmc_types::address::AddressMap;
use hmc_types::{PhysAddr, Result};

use crate::op::{OpKind, Workload};

/// Distribution of a workload's addresses over device structures.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressProfile {
    /// Operations profiled.
    pub ops: u64,
    /// Read operations.
    pub reads: u64,
    /// Write operations (including posted).
    pub writes: u64,
    /// Atomic operations.
    pub atomics: u64,
    /// Operations per vault.
    pub vault_counts: Vec<u64>,
    /// Operations per bank index (aggregated over vaults).
    pub bank_counts: Vec<u64>,
    /// Distinct blocks touched.
    pub unique_blocks: u64,
    /// Operations whose addresses failed to decode (out of range).
    pub undecodable: u64,
}

impl AddressProfile {
    fn cv(counts: &[u64]) -> f64 {
        let n = counts.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = counts.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean) * (c as f64 - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Coefficient of variation of the per-vault distribution (0 = even).
    pub fn vault_imbalance(&self) -> f64 {
        Self::cv(&self.vault_counts)
    }

    /// Coefficient of variation of the per-bank distribution (0 = even).
    pub fn bank_imbalance(&self) -> f64 {
        Self::cv(&self.bank_counts)
    }

    /// Render a compact report.
    pub fn render(&self) -> String {
        format!(
            "{} ops ({} rd / {} wr / {} atomic), {} unique blocks\n\
             vault imbalance (cv): {:.4}; bank imbalance (cv): {:.4}\n\
             hottest vault: {}; hottest bank: {}\n",
            self.ops,
            self.reads,
            self.writes,
            self.atomics,
            self.unique_blocks,
            self.vault_imbalance(),
            self.bank_imbalance(),
            self.vault_counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .unwrap_or(0),
            self.bank_counts
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i)
                .unwrap_or(0),
        )
    }
}

/// Profile up to `limit` operations of `workload` under `map`.
///
/// The workload is consumed; profile a clone or re-create it afterwards
/// (generators are cheap and deterministic per seed).
pub fn profile<W: Workload + ?Sized>(
    workload: &mut W,
    map: &dyn AddressMap,
    limit: u64,
) -> Result<AddressProfile> {
    let g = map.geometry();
    let mut p = AddressProfile {
        ops: 0,
        reads: 0,
        writes: 0,
        atomics: 0,
        vault_counts: vec![0; g.vaults as usize],
        bank_counts: vec![0; g.banks as usize],
        unique_blocks: 0,
        undecodable: 0,
    };
    let mut blocks: HashSet<u64> = HashSet::new();
    while p.ops < limit {
        let Some(op) = workload.next_op() else { break };
        p.ops += 1;
        match op.kind {
            OpKind::Read => p.reads += 1,
            OpKind::Write | OpKind::PostedWrite => p.writes += 1,
            _ => p.atomics += 1,
        }
        match PhysAddr::new(op.addr).and_then(|a| map.decode(a)) {
            Ok(d) => {
                p.vault_counts[d.vault as usize] += 1;
                p.bank_counts[d.bank as usize] += 1;
                blocks.insert(op.addr / g.block_bytes as u64);
            }
            Err(_) => p.undecodable += 1,
        }
    }
    p.unique_blocks = blocks.len() as u64;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_access::RandomAccess;
    use crate::stream::{Stream, StreamMode};
    use hmc_types::{BlockSize, LowInterleaveMap, MapGeometry};

    fn map() -> LowInterleaveMap {
        LowInterleaveMap::new(MapGeometry {
            block_bytes: 128,
            vaults: 16,
            banks: 8,
            rows: 1 << 14,
        })
        .unwrap()
    }

    #[test]
    fn random_workloads_balance_vaults_and_banks() {
        let mut w = RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 20_000);
        let p = profile(&mut w, &map(), u64::MAX).unwrap();
        assert_eq!(p.ops, 20_000);
        assert_eq!(p.reads + p.writes, 20_000);
        assert_eq!(p.undecodable, 0);
        assert!(p.vault_imbalance() < 0.1, "cv {}", p.vault_imbalance());
        assert!(p.bank_imbalance() < 0.1, "cv {}", p.bank_imbalance());
        assert!(p.unique_blocks > 10_000);
    }

    #[test]
    fn unit_stride_streams_are_perfectly_balanced() {
        let mut w = Stream::unit(1 << 20, BlockSize::B128, StreamMode::ReadOnly, 16 * 8 * 4);
        let p = profile(&mut w, &map(), u64::MAX).unwrap();
        assert!(p.vault_imbalance() < 1e-9);
        assert!(p.bank_imbalance() < 1e-9);
    }

    #[test]
    fn strided_streams_concentrate() {
        // Stride of exactly one vault rotation (16 blocks * 128 B): every
        // access lands in vault 0.
        let mut w = Stream::new(
            0,
            16 * 128,
            1 << 22,
            BlockSize::B64,
            StreamMode::ReadOnly,
            1_000,
        );
        let p = profile(&mut w, &map(), u64::MAX).unwrap();
        assert_eq!(p.vault_counts[0], 1_000, "pathological stride detected");
        assert!(p.vault_imbalance() > 1.0);
    }

    #[test]
    fn limit_caps_the_profiled_prefix() {
        let mut w = RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 10_000);
        let p = profile(&mut w, &map(), 100).unwrap();
        assert_eq!(p.ops, 100);
        // The rest of the stream is still available.
        assert!(w.next_op().is_some());
    }

    #[test]
    fn out_of_range_addresses_are_counted_not_fatal() {
        let mut w = Stream::unit(1 << 34, BlockSize::B64, StreamMode::ReadOnly, 4);
        // Map covers 16 MiB only; high addresses fail to decode.
        let small = LowInterleaveMap::new(MapGeometry {
            block_bytes: 128,
            vaults: 16,
            banks: 8,
            rows: 8,
        })
        .unwrap();
        let p = profile(&mut w, &small, u64::MAX).unwrap();
        assert_eq!(p.ops, 4);
        assert!(p.undecodable <= 4);
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let mut w = RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 500);
        let p = profile(&mut w, &map(), u64::MAX).unwrap();
        let text = p.render();
        assert!(text.contains("500 ops"));
        assert!(text.contains("vault imbalance"));
    }
}
