//! Quad-hotspot workload: traffic concentrated on one locality domain.
//!
//! HMC quads are locality domains of four vaults each, and a buffered
//! intra-cube interconnect (ring or mesh NoC) makes the distance between
//! the ingress quad and the owning vault's quad visible in latency. This
//! workload aims a configurable fraction of its requests at the vaults
//! of a single *hot* quad — the remainder spread uniformly across the
//! whole device — so fabric and arbitration choices can be compared
//! under skewed, contention-heavy traffic rather than the uniform mix
//! of [`RandomAccess`](crate::random_access::RandomAccess).
//!
//! Addresses are composed through the device's low-interleave address
//! map ([`LowInterleaveMap`]): a vault index is drawn first (hot quad or
//! uniform), then a uniform bank and row, and the triple is encoded back
//! into a flat physical address. The stream is deterministic per seed.

use hmc_types::address::{AddressMap, DecodedAddr, LowInterleaveMap, MapGeometry};
use hmc_types::config::VAULTS_PER_QUAD;
use hmc_types::{BlockSize, HmcError, QuadId, Result, VaultId};

use crate::lcg::GlibcRandom;
use crate::op::{MemOp, OpKind, Workload};

/// Default share of requests aimed at the hot quad, in percent.
pub const DEFAULT_HOT_PCT: u8 = 90;

/// Mixed reads/writes with a configurable fraction pinned to one quad.
#[derive(Debug, Clone)]
pub struct Hotspot {
    rng: GlibcRandom,
    map: LowInterleaveMap,
    block: BlockSize,
    hot_quad: QuadId,
    hot_pct: u8,
    read_pct: u8,
    total: u64,
    issued: u64,
}

impl Hotspot {
    /// A hotspot stream of `total` requests of `block` bytes over the
    /// device geometry `geometry`, with `hot_pct`% of requests aimed at
    /// the vaults of `hot_quad` and `read_pct`% reads overall.
    ///
    /// Fails with [`HmcError::InvalidConfig`] if either percentage
    /// exceeds 100, if `hot_quad` names a quad the geometry does not
    /// have, or if the geometry itself is invalid.
    pub fn new(
        seed: u32,
        geometry: MapGeometry,
        block: BlockSize,
        hot_quad: QuadId,
        hot_pct: u8,
        read_pct: u8,
        total: u64,
    ) -> Result<Self> {
        if hot_pct > 100 {
            return Err(HmcError::InvalidConfig(format!(
                "hotspot hot_pct {hot_pct} exceeds 100"
            )));
        }
        if read_pct > 100 {
            return Err(HmcError::InvalidConfig(format!(
                "hotspot read_pct {read_pct} exceeds 100"
            )));
        }
        let quads = geometry.vaults / VAULTS_PER_QUAD;
        if quads == 0 || u16::from(hot_quad) >= quads {
            return Err(HmcError::InvalidConfig(format!(
                "hotspot quad {hot_quad} out of range for a {}-vault device",
                geometry.vaults
            )));
        }
        Ok(Hotspot {
            rng: GlibcRandom::new(seed),
            map: LowInterleaveMap::new(geometry)?,
            block,
            hot_quad,
            hot_pct,
            read_pct,
            total,
            issued: 0,
        })
    }

    /// The quad receiving the concentrated share of traffic.
    pub fn hot_quad(&self) -> QuadId {
        self.hot_quad
    }

    /// Percentage of requests aimed at the hot quad.
    pub fn hot_pct(&self) -> u8 {
        self.hot_pct
    }
}

impl Workload for Hotspot {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.issued >= self.total {
            return None;
        }
        self.issued += 1;
        let g = self.map.geometry();
        let vault: VaultId = if self.rng.percent(self.hot_pct) {
            VaultId::from(self.hot_quad) * VAULTS_PER_QUAD
                + self.rng.below(u64::from(VAULTS_PER_QUAD)) as VaultId
        } else {
            self.rng.below(u64::from(g.vaults)) as VaultId
        };
        let bank = self.rng.below(u64::from(g.banks)) as u16;
        let row = self.rng.below(g.rows);
        let addr = self
            .map
            .encode(DecodedAddr {
                vault,
                bank,
                row,
                offset: 0,
            })
            .expect("fields drawn within geometry bounds always encode");
        let kind = if self.rng.percent(self.read_pct) {
            OpKind::Read
        } else {
            OpKind::Write
        };
        Some(MemOp {
            kind,
            addr: addr.raw(),
            size: self.block,
        })
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::DeviceConfig;

    fn small_geometry() -> MapGeometry {
        DeviceConfig::small().geometry()
    }

    #[test]
    fn traffic_concentrates_on_the_hot_quad() {
        let g = small_geometry();
        let map = LowInterleaveMap::new(g).unwrap();
        let mut w = Hotspot::new(7, g, BlockSize::B64, 2, 90, 50, 20_000).unwrap();
        let mut hot = 0u64;
        let mut n = 0u64;
        while let Some(op) = w.next_op() {
            let vault = map
                .vault_of(hmc_types::PhysAddr::new(op.addr).unwrap())
                .unwrap();
            if (8..12).contains(&vault) {
                hot += 1;
            }
            n += 1;
        }
        assert_eq!(n, 20_000);
        // 90% aimed + uniform spillover (4 of 16 vaults) ≈ 92.5%.
        assert!(hot > n * 85 / 100, "only {hot}/{n} requests hit quad 2");
    }

    #[test]
    fn zero_hot_share_degenerates_to_uniform() {
        let g = small_geometry();
        let map = LowInterleaveMap::new(g).unwrap();
        let mut w = Hotspot::new(3, g, BlockSize::B64, 0, 0, 50, 16_000).unwrap();
        let mut per_quad = [0u64; 4];
        while let Some(op) = w.next_op() {
            let vault = map
                .vault_of(hmc_types::PhysAddr::new(op.addr).unwrap())
                .unwrap();
            per_quad[(vault / VAULTS_PER_QUAD) as usize] += 1;
        }
        for (q, &count) in per_quad.iter().enumerate() {
            assert!(
                (3_000..5_000).contains(&count),
                "quad {q} saw {count} of 16000 uniform requests"
            );
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let g = small_geometry();
        let mut a = Hotspot::new(9, g, BlockSize::B64, 1, 80, 30, 64).unwrap();
        let mut b = Hotspot::new(9, g, BlockSize::B64, 1, 80, 30, 64).unwrap();
        for _ in 0..64 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert_eq!(a.next_op(), None);
    }

    #[test]
    fn addresses_stay_inside_the_device() {
        let g = small_geometry();
        let cap = g.capacity_bytes();
        let mut w = Hotspot::new(5, g, BlockSize::B64, 3, 75, 50, 2_000).unwrap();
        while let Some(op) = w.next_op() {
            assert!(op.addr < cap, "addr {:#x} beyond capacity {cap:#x}", op.addr);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let g = small_geometry();
        assert!(Hotspot::new(1, g, BlockSize::B64, 9, 90, 50, 10).is_err());
        assert!(Hotspot::new(1, g, BlockSize::B64, 0, 101, 50, 10).is_err());
        assert!(Hotspot::new(1, g, BlockSize::B64, 0, 90, 101, 10).is_err());
    }
}
