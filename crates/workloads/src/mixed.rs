//! Weighted mixtures of workloads.
//!
//! Real applications interleave traffic classes — streaming phases,
//! random lookups, atomic updates. [`Mixed`] draws the next operation
//! from one of several component workloads with configured weights,
//! using a deterministic glibc-style generator for the schedule so mixed
//! runs reproduce exactly.

use crate::lcg::GlibcRandom;
use crate::op::{MemOp, Workload};

/// A weighted interleaving of component workloads.
pub struct Mixed {
    parts: Vec<(u32, Box<dyn Workload + Send>)>,
    rng: GlibcRandom,
    total_weight: u64,
}

impl std::fmt::Debug for Mixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixed")
            .field("parts", &self.parts.len())
            .field("total_weight", &self.total_weight)
            .finish_non_exhaustive()
    }
}

impl Mixed {
    /// Build a mixture from `(weight, workload)` parts.
    ///
    /// # Panics
    /// Panics if no part has a positive weight.
    pub fn new(seed: u32, parts: Vec<(u32, Box<dyn Workload + Send>)>) -> Self {
        let total_weight: u64 = parts.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "mixture needs positive total weight");
        Mixed {
            parts,
            rng: GlibcRandom::new(seed),
            total_weight,
        }
    }
}

impl Workload for Mixed {
    fn next_op(&mut self) -> Option<MemOp> {
        // Draw a part by weight; if it is exhausted, fall through the
        // remaining parts in order so the mixture drains completely.
        let mut pick = self.rng.below(self.total_weight);
        let mut chosen = 0usize;
        for (i, (w, _)) in self.parts.iter().enumerate() {
            if pick < *w as u64 {
                chosen = i;
                break;
            }
            pick -= *w as u64;
        }
        let n = self.parts.len();
        for off in 0..n {
            let i = (chosen + off) % n;
            if let Some(op) = self.parts[i].1.next_op() {
                return Some(op);
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "mixed"
    }

    fn len_hint(&self) -> Option<u64> {
        self.parts
            .iter()
            .map(|(_, w)| w.len_hint())
            .try_fold(0u64, |acc, h| h.map(|v| acc + v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_access::RandomAccess;
    use crate::stream::{Stream, StreamMode};
    use hmc_types::BlockSize;

    fn mix(seed: u32) -> Mixed {
        Mixed::new(
            seed,
            vec![
                (
                    3,
                    Box::new(RandomAccess::new(1, 1 << 20, BlockSize::B64, 100, 300)),
                ),
                (
                    1,
                    Box::new(Stream::unit(
                        1 << 20,
                        BlockSize::B64,
                        StreamMode::WriteOnly,
                        100,
                    )),
                ),
            ],
        )
    }

    #[test]
    fn drains_every_component_completely() {
        let mut m = mix(1);
        assert_eq!(m.len_hint(), Some(400));
        let mut count = 0;
        while m.next_op().is_some() {
            count += 1;
        }
        assert_eq!(count, 400);
    }

    #[test]
    fn respects_weights_roughly() {
        // Random part is read-only, stream part write-only: count kinds
        // over the first 200 draws.
        use crate::op::OpKind;
        let mut m = mix(2);
        let mut reads = 0;
        let mut writes = 0;
        for _ in 0..200 {
            match m.next_op().unwrap().kind {
                OpKind::Read => reads += 1,
                OpKind::Write => writes += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(
            reads > writes,
            "3:1 weighting must favour the random reads ({reads} vs {writes})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = mix(7);
        let mut b = mix(7);
        for _ in 0..400 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weight_rejected() {
        Mixed::new(1, vec![]);
    }
}
