//! # hmc-workloads
//!
//! Deterministic request-stream generators for driving HMC-Sim devices:
//! the paper's §VI.A random-access harness (glibc-LCG addresses, mixed
//! reads/writes, configurable block sizes), streaming/strided sweeps,
//! GUPS-style atomic updates, dependent pointer chases, and a five-point
//! stencil. All generators implement the [`Workload`] trait consumed by
//! the `hmc-host` driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gups;
pub mod hammer;
pub mod hotspot;
pub mod mixed;
pub mod lcg;
pub mod op;
pub mod pointer_chase;
pub mod profile;
pub mod random_access;
pub mod replay;
pub mod spec;
pub mod stencil;
pub mod stream;

pub use gups::{Gups, UpdateKind};
pub use hammer::{Hammer, VICTIM_READ_PERIOD};
pub use hotspot::{Hotspot, DEFAULT_HOT_PCT};
pub use lcg::{GlibcRand, GlibcRandom};
pub use mixed::Mixed;
pub use replay::Replay;
pub use op::{MemOp, OpKind, Workload};
pub use pointer_chase::PointerChase;
pub use profile::{profile, AddressProfile};
pub use random_access::{RandomAccess, PAPER_REQUESTS, PAPER_WORKING_SET};
pub use spec::{WorkloadSpec, WORKLOAD_NAMES};
pub use stencil::Stencil;
pub use stream::{Stream, StreamMode};
