//! A GUPS-style atomic-update workload.
//!
//! Giga-updates-per-second kernels issue random read-modify-write updates
//! across a large table. On an HMC device these map directly onto the
//! specification's atomic request packets (2ADD8 / ADD16 / BWR), letting
//! the update happen *inside* the cube without a round trip — one of the
//! motivating use-cases for coupled logic-and-memory packages (paper §I).

use hmc_types::BlockSize;

use crate::lcg::GlibcRand;
use crate::op::{MemOp, OpKind, Workload};

/// Which atomic command the updates use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Dual 8-byte add.
    TwoAdd8,
    /// 16-byte add.
    Add16,
    /// Masked bit-write.
    BitWrite,
}

/// Random atomic updates over a table.
#[derive(Debug, Clone)]
pub struct Gups {
    rng: GlibcRand,
    table_bytes: u64,
    update: UpdateKind,
    total: u64,
    issued: u64,
}

impl Gups {
    /// `total` random updates of `update` kind over `table_bytes` bytes.
    ///
    /// # Panics
    /// Panics if the table cannot hold one 16-byte update slot.
    pub fn new(seed: u32, table_bytes: u64, update: UpdateKind, total: u64) -> Self {
        assert!(table_bytes >= 16, "table must hold one update slot");
        Gups {
            rng: GlibcRand::new(seed),
            table_bytes,
            update,
            total,
            issued: 0,
        }
    }
}

impl Workload for Gups {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.issued >= self.total {
            return None;
        }
        self.issued += 1;
        let slots = self.table_bytes / 16;
        let addr = self.rng.below(slots) * 16;
        let kind = match self.update {
            UpdateKind::TwoAdd8 => OpKind::TwoAdd8,
            UpdateKind::Add16 => OpKind::Add16,
            UpdateKind::BitWrite => OpKind::BitWrite,
        };
        Some(MemOp {
            kind,
            addr,
            size: BlockSize::B16,
        })
    }

    fn name(&self) -> &'static str {
        "gups"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_atomic_ops_aligned_to_slots() {
        let mut g = Gups::new(1, 1 << 16, UpdateKind::Add16, 100);
        let mut n = 0;
        while let Some(op) = g.next_op() {
            assert_eq!(op.kind, OpKind::Add16);
            assert_eq!(op.addr % 16, 0);
            assert!(op.addr < (1 << 16));
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn update_kinds_map_to_commands() {
        use hmc_types::Command;
        let mut g = Gups::new(1, 1 << 16, UpdateKind::TwoAdd8, 1);
        assert_eq!(g.next_op().unwrap().command(), Command::TwoAdd8);
        let mut g = Gups::new(1, 1 << 16, UpdateKind::BitWrite, 1);
        assert_eq!(g.next_op().unwrap().command(), Command::Bwr);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Gups::new(5, 1 << 20, UpdateKind::Add16, 20);
        let mut b = Gups::new(5, 1 << 20, UpdateKind::Add16, 20);
        for _ in 0..20 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
