//! Sequential and strided streaming workloads.
//!
//! Streaming sweeps are the natural complement to the paper's random
//! harness: under the default low-interleave address map a unit-stride
//! stream rotates perfectly across vaults and banks (§III.B's stated
//! design goal), while large power-of-two strides collapse onto a few
//! vaults — the pathology the interleave exists to avoid.

use hmc_types::BlockSize;

use crate::op::{MemOp, OpKind, Workload};

/// Direction of a streaming sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// All reads.
    ReadOnly,
    /// All writes.
    WriteOnly,
    /// Alternating read/write (copy-like).
    Copy,
}

/// A strided sequential sweep over an address range.
#[derive(Debug, Clone)]
pub struct Stream {
    base: u64,
    stride: u64,
    block: BlockSize,
    mode: StreamMode,
    total: u64,
    issued: u64,
    range: u64,
}

impl Stream {
    /// A sweep of `total` ops of `block` bytes starting at `base`,
    /// advancing `stride` bytes per op, wrapping within `range` bytes.
    ///
    /// # Panics
    /// Panics if `stride` is zero or smaller than the block, or if the
    /// range cannot hold one block.
    pub fn new(
        base: u64,
        stride: u64,
        range: u64,
        block: BlockSize,
        mode: StreamMode,
        total: u64,
    ) -> Self {
        assert!(stride >= block.bytes() as u64, "stride must cover a block");
        assert!(range >= block.bytes() as u64, "range must hold a block");
        Stream {
            base,
            stride,
            block,
            mode,
            total,
            issued: 0,
            range,
        }
    }

    /// A unit-stride sweep (stride == block size).
    pub fn unit(range: u64, block: BlockSize, mode: StreamMode, total: u64) -> Self {
        Stream::new(0, block.bytes() as u64, range, block, mode, total)
    }
}

impl Workload for Stream {
    fn next_op(&mut self) -> Option<MemOp> {
        if self.issued >= self.total {
            return None;
        }
        let i = self.issued;
        self.issued += 1;
        let addr = (self.base + i * self.stride) % self.range;
        // Align down to the block in case range/stride interact oddly.
        let addr = addr - addr % self.block.bytes() as u64;
        let kind = match self.mode {
            StreamMode::ReadOnly => OpKind::Read,
            StreamMode::WriteOnly => OpKind::Write,
            StreamMode::Copy => {
                if i.is_multiple_of(2) {
                    OpKind::Read
                } else {
                    OpKind::Write
                }
            }
        };
        Some(MemOp {
            kind,
            addr,
            size: self.block,
        })
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_walks_sequential_blocks() {
        let mut s = Stream::unit(1 << 20, BlockSize::B64, StreamMode::ReadOnly, 10);
        for i in 0..10u64 {
            let op = s.next_op().unwrap();
            assert_eq!(op.addr, i * 64);
            assert_eq!(op.kind, OpKind::Read);
        }
        assert!(s.next_op().is_none());
    }

    #[test]
    fn strided_access_skips() {
        let mut s = Stream::new(0, 4096, 1 << 20, BlockSize::B64, StreamMode::WriteOnly, 4);
        let addrs: Vec<u64> = std::iter::from_fn(|| s.next_op()).map(|o| o.addr).collect();
        assert_eq!(addrs, vec![0, 4096, 8192, 12288]);
    }

    #[test]
    fn copy_mode_alternates() {
        let mut s = Stream::unit(1 << 20, BlockSize::B64, StreamMode::Copy, 4);
        let kinds: Vec<OpKind> = std::iter::from_fn(|| s.next_op()).map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![OpKind::Read, OpKind::Write, OpKind::Read, OpKind::Write]
        );
    }

    #[test]
    fn wraps_within_range() {
        let mut s = Stream::unit(256, BlockSize::B64, StreamMode::ReadOnly, 8);
        let addrs: Vec<u64> = std::iter::from_fn(|| s.next_op()).map(|o| o.addr).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64, 128, 192]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn sub_block_stride_rejected() {
        Stream::new(0, 32, 1 << 20, BlockSize::B64, StreamMode::ReadOnly, 1);
    }
}
