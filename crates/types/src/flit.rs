//! FLIT (flow unit) arithmetic.
//!
//! All in-band HMC communication is packetized as a multiple of a single
//! 16-byte flow unit, or FLIT (paper §III.C). The maximum packet size is
//! 9 FLITs (144 bytes); the minimum single-FLIT packet carries only the
//! 64-bit header and 64-bit tail. Data payloads therefore occupy 0–8 FLITs
//! (0–128 bytes) between the header and tail words.

/// Size of a single flow unit in bytes.
pub const FLIT_BYTES: usize = 16;

/// Maximum packet length in FLITs (header + 8 data FLITs + tail share 9).
pub const MAX_PACKET_FLITS: usize = 9;

/// Maximum packet length in bytes (9 FLITs).
pub const MAX_PACKET_BYTES: usize = MAX_PACKET_FLITS * FLIT_BYTES;

/// Maximum data payload in bytes (8 data FLITs).
pub const MAX_DATA_BYTES: usize = (MAX_PACKET_FLITS - 1) * FLIT_BYTES;

/// Number of 64-bit words of payload storage a packet must reserve.
pub const MAX_DATA_WORDS: usize = MAX_DATA_BYTES / 8;

/// Total packet length in FLITs for a given data payload size in bytes.
///
/// The header and tail together occupy exactly one FLIT (8 bytes each), so a
/// packet is `1 + ceil(data_bytes / 16)` FLITs. Payloads are only valid in
/// whole multiples of 16 bytes up to 128; this function rounds partial FLITs
/// up, mirroring the wire format.
///
/// # Panics
/// Panics if `data_bytes > 128` (no legal HMC packet can carry more).
pub fn flits_for_data(data_bytes: usize) -> usize {
    assert!(
        data_bytes <= MAX_DATA_BYTES,
        "payload of {data_bytes} bytes exceeds the {MAX_DATA_BYTES}-byte HMC maximum"
    );
    1 + data_bytes.div_ceil(FLIT_BYTES)
}

/// Inverse of [`flits_for_data`]: payload bytes implied by a packet length.
///
/// # Panics
/// Panics if `flits` is zero or exceeds [`MAX_PACKET_FLITS`].
pub fn data_bytes_for_flits(flits: usize) -> usize {
    assert!(
        (1..=MAX_PACKET_FLITS).contains(&flits),
        "packet length of {flits} FLITs is outside 1..=9"
    );
    (flits - 1) * FLIT_BYTES
}

/// True if `len` is a legal packet length field value (1..=9 FLITs).
pub fn is_valid_packet_length(flits: usize) -> bool {
    (1..=MAX_PACKET_FLITS).contains(&flits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_spec() {
        assert_eq!(FLIT_BYTES, 16);
        assert_eq!(MAX_PACKET_FLITS, 9);
        assert_eq!(MAX_PACKET_BYTES, 144);
        assert_eq!(MAX_DATA_BYTES, 128);
        assert_eq!(MAX_DATA_WORDS, 16);
    }

    #[test]
    fn read_request_is_single_flit() {
        // Read requests carry no payload: header + tail only (§III.C).
        assert_eq!(flits_for_data(0), 1);
    }

    #[test]
    fn write_requests_span_two_to_nine_flits() {
        assert_eq!(flits_for_data(16), 2);
        assert_eq!(flits_for_data(32), 3);
        assert_eq!(flits_for_data(48), 4);
        assert_eq!(flits_for_data(64), 5);
        assert_eq!(flits_for_data(80), 6);
        assert_eq!(flits_for_data(96), 7);
        assert_eq!(flits_for_data(112), 8);
        assert_eq!(flits_for_data(128), 9);
    }

    #[test]
    fn partial_payloads_round_up() {
        assert_eq!(flits_for_data(1), 2);
        assert_eq!(flits_for_data(17), 3);
        assert_eq!(flits_for_data(127), 9);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        flits_for_data(129);
    }

    #[test]
    fn roundtrip_flits_and_bytes() {
        for flits in 1..=MAX_PACKET_FLITS {
            let bytes = data_bytes_for_flits(flits);
            assert_eq!(flits_for_data(bytes), flits);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_flit_packet_rejected() {
        data_bytes_for_flits(0);
    }

    #[test]
    fn validity_predicate() {
        assert!(!is_valid_packet_length(0));
        assert!(is_valid_packet_length(1));
        assert!(is_valid_packet_length(9));
        assert!(!is_valid_packet_length(10));
    }
}
