//! Cell-level fault-injection configuration: RowHammer disturbance and
//! retention decay.
//!
//! HMC-Sim's requirement 5 calls for "functional simulation, error
//! simulation and performance simulation" (paper §IV). The link-level
//! error model covers SERDES transit; [`CellFaultConfig`] extends error
//! simulation into the DRAM array itself, following the system-level
//! RowHammer modelling approach of HammerSim: rows activated more than
//! a threshold number of times within one refresh window disturb their
//! physically adjacent victim rows, flipping bits with a seeded per-bit
//! probability, and unrefreshed cells past a retention horizon decay on
//! their own. Two standard mitigations are modelled behind
//! [`Mitigation`].
//!
//! This type is pure data (all-integer, `Copy`, `Eq`, serde) so it can
//! ride in `SimParams`, device-config JSON, and the serve wire protocol
//! without floating-point or hashing hazards. The live injection state
//! lives in `hmc_mem` next to the banks it corrupts.

use serde::{Deserialize, Serialize};

use crate::error::{HmcError, Result};

/// RowHammer mitigation strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mitigation {
    /// No mitigation: threshold crossings flip victim-row bits.
    #[default]
    None,
    /// Target Row Refresh: when an aggressor row crosses the threshold,
    /// its neighbors are refreshed instead of disturbed (no flips), the
    /// aggressor's accumulated disturbance is erased, and the bank pays
    /// [`CellFaultConfig::trr_cost`] cycles of refresh busy time through
    /// the vault timing backend.
    Trr,
    /// Elevated refresh duty: the refresh window is shortened (divided
    /// by four), so activation counts reset before most aggressors can
    /// reach the threshold and fewer cells outlive the retention
    /// horizon. Crossings that still occur flip bits normally.
    ElevatedRefresh,
}

impl Mitigation {
    /// Every mitigation, for CLI sweeps and tests.
    pub const ALL: [Mitigation; 3] = [
        Mitigation::None,
        Mitigation::Trr,
        Mitigation::ElevatedRefresh,
    ];

    /// Short CLI/config name.
    pub fn name(self) -> &'static str {
        match self {
            Mitigation::None => "none",
            Mitigation::Trr => "trr",
            Mitigation::ElevatedRefresh => "elevated",
        }
    }

    /// Look up a mitigation by its short CLI name.
    pub fn by_name(name: &str) -> Option<Mitigation> {
        match name {
            "none" => Some(Mitigation::None),
            "trr" => Some(Mitigation::Trr),
            "elevated" | "elevated-refresh" => Some(Mitigation::ElevatedRefresh),
            _ => None,
        }
    }
}

/// Deterministic cell-fault injection parameters.
///
/// Probabilities are expressed in parts per million so the whole config
/// stays integer-valued (`Copy + Eq`, usable inside `SimParams`). The
/// subsystem is off unless a config is installed; an installed config
/// with `hammer_threshold == 0` and `retention_cycles == 0` injects
/// nothing but still counts activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellFaultConfig {
    /// Aggressor activations within one refresh window after which the
    /// adjacent victim rows are disturbed (every multiple fires again).
    /// `0` disables the hammer axis.
    pub hammer_threshold: u32,
    /// Per-bit flip probability in each victim row per threshold
    /// crossing, in parts per million. Values at or above 1 000 000
    /// flip every bit.
    pub flip_prob_ppm: u32,
    /// Retention horizon in cycles: cells left unrefreshed longer than
    /// this within a refresh window decay. `0` disables the retention
    /// axis; values at or above `refresh_window` never fire (refresh
    /// always arrives in time).
    pub retention_cycles: u64,
    /// Per-bit decay probability for a row read past the retention
    /// horizon, in parts per million, applied once per refresh window.
    pub retention_prob_ppm: u32,
    /// Cycles per refresh window: activation counters reset at every
    /// window edge and retention is measured from the window start.
    /// Independent of the timing backend's refresh modelling so the
    /// fault axis works under every backend. Must be non-zero.
    pub refresh_window: u64,
    /// Mitigation strategy.
    pub mitigation: Mitigation,
    /// Cycles a bank stays busy per targeted refresh ([`Mitigation::Trr`]).
    pub trr_cost: u32,
    /// Seed of the deterministic flip streams. Flip decisions are pure
    /// functions of (seed, vault, bank, row, window, crossing, bit), so
    /// they are independent of thread count and engine mode.
    pub seed: u64,
}

impl Default for CellFaultConfig {
    fn default() -> Self {
        CellFaultConfig {
            hammer_threshold: 256,
            flip_prob_ppm: 1_000,
            retention_cycles: 0,
            retention_prob_ppm: 500,
            refresh_window: 8_192,
            mitigation: Mitigation::None,
            trr_cost: 16,
            seed: 0x0ce1_1fa7,
        }
    }
}

// Hand-written serde impls (the vendored stand-in has no container
// defaults): config files may set only the knobs they care about, and
// each missing field falls back to this struct's `Default` value, not
// the field type's zero.
impl Serialize for CellFaultConfig {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("hammer_threshold".into(), self.hammer_threshold.to_value()),
            ("flip_prob_ppm".into(), self.flip_prob_ppm.to_value()),
            ("retention_cycles".into(), self.retention_cycles.to_value()),
            ("retention_prob_ppm".into(), self.retention_prob_ppm.to_value()),
            ("refresh_window".into(), self.refresh_window.to_value()),
            ("mitigation".into(), self.mitigation.to_value()),
            ("trr_cost".into(), self.trr_cost.to_value()),
            ("seed".into(), self.seed.to_value()),
        ])
    }
}

impl Deserialize for CellFaultConfig {
    fn from_value(v: &serde::value::Value) -> std::result::Result<Self, serde::de::Error> {
        fn field_or<T: Deserialize>(
            fields: &[(String, serde::value::Value)],
            name: &str,
            fallback: T,
        ) -> std::result::Result<T, serde::de::Error> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_value(v).map_err(|e| {
                    serde::de::Error::custom(format!(
                        "field `{name}` of `CellFaultConfig`: {e}"
                    ))
                }),
                None => Ok(fallback),
            }
        }
        let fields = v.as_object().ok_or_else(|| {
            serde::de::Error::custom("expected an object for `CellFaultConfig`")
        })?;
        let d = CellFaultConfig::default();
        Ok(CellFaultConfig {
            hammer_threshold: field_or(fields, "hammer_threshold", d.hammer_threshold)?,
            flip_prob_ppm: field_or(fields, "flip_prob_ppm", d.flip_prob_ppm)?,
            retention_cycles: field_or(fields, "retention_cycles", d.retention_cycles)?,
            retention_prob_ppm: field_or(fields, "retention_prob_ppm", d.retention_prob_ppm)?,
            refresh_window: field_or(fields, "refresh_window", d.refresh_window)?,
            mitigation: field_or(fields, "mitigation", d.mitigation)?,
            trr_cost: field_or(fields, "trr_cost", d.trr_cost)?,
            seed: field_or(fields, "seed", d.seed)?,
        })
    }
}

impl CellFaultConfig {
    /// Replace the hammer threshold (builder style).
    pub fn with_hammer_threshold(mut self, threshold: u32) -> Self {
        self.hammer_threshold = threshold;
        self
    }

    /// Replace the per-bit flip probability in ppm (builder style).
    pub fn with_flip_prob_ppm(mut self, ppm: u32) -> Self {
        self.flip_prob_ppm = ppm;
        self
    }

    /// Replace the retention horizon in cycles (builder style).
    pub fn with_retention(mut self, cycles: u64) -> Self {
        self.retention_cycles = cycles;
        self
    }

    /// Replace the refresh window length (builder style).
    pub fn with_refresh_window(mut self, cycles: u64) -> Self {
        self.refresh_window = cycles;
        self
    }

    /// Replace the mitigation strategy (builder style).
    pub fn with_mitigation(mut self, mitigation: Mitigation) -> Self {
        self.mitigation = mitigation;
        self
    }

    /// Replace the flip-stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Apply one of the shared cell-fault CLI flags to `slot`, used by
    /// every frontend so the flag vocabulary cannot drift:
    /// `--hammer-threshold N`, `--flip-prob PPM`, `--retention CYCLES`,
    /// `--mitigation none|trr|elevated`.
    ///
    /// Returns `Ok(false)` when `flag` is not a cell-fault flag (the
    /// caller keeps parsing), `Ok(true)` when it was consumed — a `None`
    /// slot is materialized with defaults first — and an error when the
    /// flag's value is missing or malformed.
    pub fn apply_flag(
        slot: &mut Option<CellFaultConfig>,
        flag: &str,
        value: Option<&str>,
    ) -> Result<bool> {
        if !matches!(
            flag,
            "--hammer-threshold" | "--flip-prob" | "--retention" | "--mitigation"
        ) {
            return Ok(false);
        }
        let v = value
            .ok_or_else(|| HmcError::InvalidConfig(format!("{flag} needs a value")))?;
        let mut cfg = slot.unwrap_or_default();
        match flag {
            "--hammer-threshold" => {
                cfg.hammer_threshold = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs an activation count, got {v:?}"))
                })?;
            }
            "--flip-prob" => {
                cfg.flip_prob_ppm = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs a ppm value, got {v:?}"))
                })?;
            }
            "--retention" => {
                cfg.retention_cycles = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs a cycle count, got {v:?}"))
                })?;
            }
            _ => {
                cfg.mitigation = Mitigation::by_name(v).ok_or_else(|| {
                    HmcError::InvalidConfig(format!(
                        "{flag} needs `none`, `trr`, or `elevated`, got {v:?}"
                    ))
                })?;
            }
        }
        *slot = Some(cfg);
        Ok(true)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.refresh_window == 0 {
            return Err(HmcError::InvalidConfig(
                "cell-fault refresh_window must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mitigation_names_roundtrip() {
        for m in Mitigation::ALL {
            assert_eq!(Mitigation::by_name(m.name()), Some(m));
        }
        assert_eq!(Mitigation::by_name("elevated-refresh"), Some(Mitigation::ElevatedRefresh));
        assert_eq!(Mitigation::by_name("bogus"), None);
    }

    #[test]
    fn defaults_validate_and_serialize() {
        let c = CellFaultConfig::default();
        c.validate().unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: CellFaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn partial_json_fills_defaults() {
        // Config files may set only the knobs they care about.
        let c: CellFaultConfig =
            serde_json::from_str(r#"{"hammer_threshold": 32, "mitigation": "Trr"}"#).unwrap();
        assert_eq!(c.hammer_threshold, 32);
        assert_eq!(c.mitigation, Mitigation::Trr);
        assert_eq!(c.refresh_window, CellFaultConfig::default().refresh_window);
    }

    #[test]
    fn cli_flags_materialize_and_compose() {
        let mut slot = None;
        assert!(!CellFaultConfig::apply_flag(&mut slot, "--seed", Some("1")).unwrap());
        assert!(slot.is_none(), "unrelated flags leave the slot untouched");
        assert!(CellFaultConfig::apply_flag(&mut slot, "--hammer-threshold", Some("64")).unwrap());
        assert!(CellFaultConfig::apply_flag(&mut slot, "--mitigation", Some("trr")).unwrap());
        let cfg = slot.unwrap();
        assert_eq!(cfg.hammer_threshold, 64);
        assert_eq!(cfg.mitigation, Mitigation::Trr);
        assert_eq!(cfg.flip_prob_ppm, CellFaultConfig::default().flip_prob_ppm);
        let mut slot = None;
        assert!(CellFaultConfig::apply_flag(&mut slot, "--flip-prob", None).is_err());
        assert!(CellFaultConfig::apply_flag(&mut slot, "--retention", Some("x")).is_err());
        assert!(CellFaultConfig::apply_flag(&mut slot, "--mitigation", Some("bogus")).is_err());
    }

    #[test]
    fn zero_window_rejected() {
        let c = CellFaultConfig::default().with_refresh_window(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = CellFaultConfig::default()
            .with_hammer_threshold(64)
            .with_flip_prob_ppm(5_000)
            .with_retention(100)
            .with_refresh_window(1_000)
            .with_mitigation(Mitigation::ElevatedRefresh)
            .with_seed(42);
        assert_eq!(c.hammer_threshold, 64);
        assert_eq!(c.flip_prob_ppm, 5_000);
        assert_eq!(c.retention_cycles, 100);
        assert_eq!(c.refresh_window, 1_000);
        assert_eq!(c.mitigation, Mitigation::ElevatedRefresh);
        assert_eq!(c.seed, 42);
    }
}
