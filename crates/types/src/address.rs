//! Physical addressing and interleave maps.
//!
//! HMC physical addresses are encoded in a 34-bit field containing vault,
//! bank and address (row/offset) bits (paper §III.B). Rather than a single
//! fixed structure, the specification lets the implementer define the map
//! most optimized for the target access characteristics, and provides
//! default modes that marry the vault/bank structure to the desired maximum
//! block request size.
//!
//! The **default low-interleave map** places the least significant address
//! bits (above the block offset) in the vault field, followed immediately by
//! the bank field — forcing sequential addresses to interleave first across
//! vaults, then across banks within a vault, to avoid bank conflicts.
//!
//! This module provides that default plus a bank-first variant, a linear
//! (locality-preserving) variant, and a fully custom field ordering, all
//! behind the object-safe [`AddressMap`] trait.

use crate::error::{HmcError, Result};
use crate::{BankId, VaultId};

/// A 34-bit HMC physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Number of bits in the HMC physical address field.
    pub const BITS: u32 = 34;

    /// Maximum representable address value.
    pub const MAX: u64 = (1 << Self::BITS) - 1;

    /// Construct, validating the 34-bit range.
    pub fn new(addr: u64) -> Result<Self> {
        if addr > Self::MAX {
            return Err(HmcError::InvalidAddress {
                addr,
                reason: "exceeds the 34-bit HMC address field".into(),
            });
        }
        Ok(PhysAddr(addr))
    }

    /// Construct without range checking (masks to 34 bits).
    pub fn new_truncating(addr: u64) -> Self {
        PhysAddr(addr & Self::MAX)
    }

    /// Raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> u64 {
        a.0
    }
}

/// A physical address decomposed into device-structure coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// Target vault.
    pub vault: VaultId,
    /// Target bank within the vault.
    pub bank: BankId,
    /// Row (block index) within the bank.
    pub row: u64,
    /// Byte offset within the block.
    pub offset: u32,
}

/// Geometry of an address map: how many bits each field occupies.
///
/// All dimensions must be powers of two so fields pack into disjoint bit
/// ranges of the 34-bit address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapGeometry {
    /// Block (maximum request) size in bytes; the low `log2` bits are the
    /// in-block offset.
    pub block_bytes: u32,
    /// Number of vaults on the device.
    pub vaults: u16,
    /// Number of banks per vault.
    pub banks: u16,
    /// Number of rows (blocks) per bank.
    pub rows: u64,
}

impl MapGeometry {
    /// Validate the geometry: every dimension a nonzero power of two, and
    /// the combined field widths fitting the 34-bit address space.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("block_bytes", self.block_bytes as u64),
            ("vaults", self.vaults as u64),
            ("banks", self.banks as u64),
            ("rows", self.rows),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(HmcError::InvalidConfig(format!(
                    "address-map geometry: {name} = {v} must be a nonzero power of two"
                )));
            }
        }
        let bits = self.offset_bits() + self.vault_bits() + self.bank_bits() + self.row_bits();
        if bits > PhysAddr::BITS {
            return Err(HmcError::InvalidConfig(format!(
                "address-map geometry needs {bits} bits, exceeding the 34-bit field"
            )));
        }
        Ok(())
    }

    /// Bits of in-block offset.
    pub fn offset_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// Bits of vault index.
    pub fn vault_bits(&self) -> u32 {
        (self.vaults as u64).trailing_zeros()
    }

    /// Bits of bank index.
    pub fn bank_bits(&self) -> u32 {
        (self.banks as u64).trailing_zeros()
    }

    /// Bits of row index.
    pub fn row_bits(&self) -> u32 {
        self.rows.trailing_zeros()
    }

    /// Total addressable bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.block_bytes as u64 * self.vaults as u64 * self.banks as u64 * self.rows
    }
}

/// The non-offset fields of an address map, in placement order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// The vault-index field.
    Vault,
    /// The bank-index field.
    Bank,
    /// The row-index field.
    Row,
}

/// An address mapping scheme: bidirectional translation between flat 34-bit
/// physical addresses and `(vault, bank, row, offset)` coordinates.
pub trait AddressMap: Send + Sync {
    /// The geometry this map was built for.
    fn geometry(&self) -> MapGeometry;

    /// Field placement from least significant (above the offset) upward.
    fn order(&self) -> [Field; 3];

    /// Human-readable name for traces and reports.
    fn name(&self) -> &'static str;

    /// Decode a physical address into structure coordinates.
    fn decode(&self, addr: PhysAddr) -> Result<DecodedAddr> {
        let g = self.geometry();
        if addr.raw() >= g.capacity_bytes() {
            return Err(HmcError::InvalidAddress {
                addr: addr.raw(),
                reason: format!(
                    "beyond device capacity of {} bytes",
                    g.capacity_bytes()
                ),
            });
        }
        let offset = (addr.raw() & (g.block_bytes as u64 - 1)) as u32;
        let mut rest = addr.raw() >> g.offset_bits();
        let mut vault = 0u64;
        let mut bank = 0u64;
        let mut row = 0u64;
        for field in self.order() {
            let bits = match field {
                Field::Vault => g.vault_bits(),
                Field::Bank => g.bank_bits(),
                Field::Row => g.row_bits(),
            };
            let val = rest & ((1u64 << bits) - 1);
            rest >>= bits;
            match field {
                Field::Vault => vault = val,
                Field::Bank => bank = val,
                Field::Row => row = val,
            }
        }
        Ok(DecodedAddr {
            vault: vault as VaultId,
            bank: bank as BankId,
            row,
            offset,
        })
    }

    /// Encode structure coordinates back into a physical address.
    fn encode(&self, d: DecodedAddr) -> Result<PhysAddr> {
        let g = self.geometry();
        if d.vault as u64 >= g.vaults as u64 {
            return Err(HmcError::vault_range(d.vault, g.vaults));
        }
        if d.bank as u64 >= g.banks as u64 {
            return Err(HmcError::OutOfRange {
                what: "bank",
                index: d.bank as u64,
                limit: g.banks as u64,
            });
        }
        if d.row >= g.rows {
            return Err(HmcError::OutOfRange {
                what: "row",
                index: d.row,
                limit: g.rows,
            });
        }
        if d.offset as u64 >= g.block_bytes as u64 {
            return Err(HmcError::OutOfRange {
                what: "offset",
                index: d.offset as u64,
                limit: g.block_bytes as u64,
            });
        }
        let mut addr = 0u64;
        let mut shift = g.offset_bits();
        for field in self.order() {
            let (bits, val) = match field {
                Field::Vault => (g.vault_bits(), d.vault as u64),
                Field::Bank => (g.bank_bits(), d.bank as u64),
                Field::Row => (g.row_bits(), d.row),
            };
            addr |= val << shift;
            shift += bits;
        }
        addr |= d.offset as u64;
        PhysAddr::new(addr)
    }

    /// Fast path: vault of an address (used every cycle by the crossbar).
    fn vault_of(&self, addr: PhysAddr) -> Result<VaultId> {
        Ok(self.decode(addr)?.vault)
    }

    /// Fast path: bank of an address (used by conflict recognition).
    fn bank_of(&self, addr: PhysAddr) -> Result<BankId> {
        Ok(self.decode(addr)?.bank)
    }
}

macro_rules! simple_map {
    ($(#[$doc:meta])* $name:ident, $order:expr, $label:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            geometry: MapGeometry,
        }

        impl $name {
            /// Build the map over the given geometry, validating it.
            pub fn new(geometry: MapGeometry) -> Result<Self> {
                geometry.validate()?;
                Ok(Self { geometry })
            }
        }

        impl AddressMap for $name {
            fn geometry(&self) -> MapGeometry {
                self.geometry
            }
            fn order(&self) -> [Field; 3] {
                $order
            }
            fn name(&self) -> &'static str {
                $label
            }
        }
    };
}

simple_map!(
    /// The specification's default low-interleave map: from the LSB upward,
    /// `[offset][vault][bank][row]`. Sequential addresses interleave first
    /// across vaults, then across banks within a vault (paper §III.B).
    LowInterleaveMap,
    [Field::Vault, Field::Bank, Field::Row],
    "low-interleave"
);

simple_map!(
    /// Bank-first variant: `[offset][bank][vault][row]`. Sequential
    /// addresses sweep the banks of one vault before moving on — a
    /// deliberately conflict-prone map, useful as an ablation baseline.
    BankFirstMap,
    [Field::Bank, Field::Vault, Field::Row],
    "bank-first"
);

simple_map!(
    /// Linear / locality-preserving map: `[offset][row][bank][vault]`.
    /// Sequential addresses stay within one bank's rows, then one vault's
    /// banks — the closest analogue of a traditional DIMM layout.
    LinearMap,
    [Field::Row, Field::Bank, Field::Vault],
    "linear"
);

/// A user-defined field ordering (the spec "permits the implementer and
/// user to define an address mapping scheme", §III.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomMap {
    geometry: MapGeometry,
    order: [Field; 3],
}

impl CustomMap {
    /// Build a custom map; `order` must name each field exactly once.
    pub fn new(geometry: MapGeometry, order: [Field; 3]) -> Result<Self> {
        geometry.validate()?;
        let mut seen = [false; 3];
        for f in order {
            let idx = match f {
                Field::Vault => 0,
                Field::Bank => 1,
                Field::Row => 2,
            };
            if seen[idx] {
                return Err(HmcError::InvalidConfig(format!(
                    "custom address map repeats field {f:?}"
                )));
            }
            seen[idx] = true;
        }
        Ok(CustomMap { geometry, order })
    }
}

impl AddressMap for CustomMap {
    fn geometry(&self) -> MapGeometry {
        self.geometry
    }
    fn order(&self) -> [Field; 3] {
        self.order
    }
    fn name(&self) -> &'static str {
        "custom"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> MapGeometry {
        MapGeometry {
            block_bytes: 64,
            vaults: 16,
            banks: 8,
            rows: 1 << 18, // 16 MiB banks of 64-byte blocks => 2 GiB device
        }
    }

    #[test]
    fn phys_addr_range_enforced() {
        assert!(PhysAddr::new(PhysAddr::MAX).is_ok());
        assert!(PhysAddr::new(PhysAddr::MAX + 1).is_err());
        assert_eq!(
            PhysAddr::new_truncating(PhysAddr::MAX + 1).raw(),
            0,
            "truncation masks to 34 bits"
        );
    }

    #[test]
    fn geometry_bit_accounting() {
        let g = small_geom();
        g.validate().unwrap();
        assert_eq!(g.offset_bits(), 6);
        assert_eq!(g.vault_bits(), 4);
        assert_eq!(g.bank_bits(), 3);
        assert_eq!(g.row_bits(), 18);
        assert_eq!(g.capacity_bytes(), 2 << 30);
    }

    #[test]
    fn geometry_rejects_non_power_of_two() {
        let mut g = small_geom();
        g.banks = 6;
        assert!(g.validate().is_err());
        let mut g = small_geom();
        g.vaults = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn geometry_rejects_overflowing_bits() {
        let g = MapGeometry {
            block_bytes: 256,
            vaults: 32,
            banks: 16,
            rows: 1 << 25, // 8 + 5 + 4 + 25 = 42 bits > 34
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn low_interleave_places_vault_bits_first() {
        // §III.B: sequential block-aligned addresses interleave across
        // vaults first, then banks.
        let m = LowInterleaveMap::new(small_geom()).unwrap();
        for i in 0..16u64 {
            let d = m.decode(PhysAddr::new(i * 64).unwrap()).unwrap();
            assert_eq!(d.vault, i as u16, "block {i} must land in vault {i}");
            assert_eq!(d.bank, 0);
        }
        // Block 16 wraps vaults and bumps the bank.
        let d = m.decode(PhysAddr::new(16 * 64).unwrap()).unwrap();
        assert_eq!(d.vault, 0);
        assert_eq!(d.bank, 1);
    }

    #[test]
    fn bank_first_places_bank_bits_first() {
        let m = BankFirstMap::new(small_geom()).unwrap();
        for i in 0..8u64 {
            let d = m.decode(PhysAddr::new(i * 64).unwrap()).unwrap();
            assert_eq!(d.bank, i as u16);
            assert_eq!(d.vault, 0);
        }
        let d = m.decode(PhysAddr::new(8 * 64).unwrap()).unwrap();
        assert_eq!(d.bank, 0);
        assert_eq!(d.vault, 1);
    }

    #[test]
    fn linear_map_keeps_sequential_blocks_in_one_bank() {
        let m = LinearMap::new(small_geom()).unwrap();
        for i in 0..100u64 {
            let d = m.decode(PhysAddr::new(i * 64).unwrap()).unwrap();
            assert_eq!(d.vault, 0);
            assert_eq!(d.bank, 0);
            assert_eq!(d.row, i);
        }
    }

    #[test]
    fn decode_extracts_offset() {
        let m = LowInterleaveMap::new(small_geom()).unwrap();
        let d = m.decode(PhysAddr::new(64 + 17).unwrap()).unwrap();
        assert_eq!(d.offset, 17);
        assert_eq!(d.vault, 1);
    }

    #[test]
    fn decode_rejects_addresses_beyond_capacity() {
        let m = LowInterleaveMap::new(small_geom()).unwrap();
        let over = small_geom().capacity_bytes();
        assert!(m.decode(PhysAddr::new(over).unwrap()).is_err());
    }

    #[test]
    fn encode_decode_roundtrip_on_all_maps() {
        let g = MapGeometry {
            block_bytes: 32,
            vaults: 4,
            banks: 4,
            rows: 8,
        };
        let maps: Vec<Box<dyn AddressMap>> = vec![
            Box::new(LowInterleaveMap::new(g).unwrap()),
            Box::new(BankFirstMap::new(g).unwrap()),
            Box::new(LinearMap::new(g).unwrap()),
            Box::new(CustomMap::new(g, [Field::Row, Field::Vault, Field::Bank]).unwrap()),
        ];
        for m in &maps {
            for addr in 0..g.capacity_bytes() {
                let pa = PhysAddr::new(addr).unwrap();
                let d = m.decode(pa).unwrap();
                assert_eq!(m.encode(d).unwrap(), pa, "{} roundtrip {addr}", m.name());
            }
        }
    }

    #[test]
    fn maps_are_bijective() {
        // Every address decodes to a distinct coordinate tuple.
        let g = MapGeometry {
            block_bytes: 16,
            vaults: 4,
            banks: 2,
            rows: 4,
        };
        let m = LowInterleaveMap::new(g).unwrap();
        let mut seen = std::collections::HashSet::new();
        for addr in 0..g.capacity_bytes() {
            let d = m.decode(PhysAddr::new(addr).unwrap()).unwrap();
            assert!(seen.insert((d.vault, d.bank, d.row, d.offset)));
        }
        assert_eq!(seen.len() as u64, g.capacity_bytes());
    }

    #[test]
    fn encode_validates_coordinates() {
        let m = LowInterleaveMap::new(small_geom()).unwrap();
        let base = DecodedAddr {
            vault: 0,
            bank: 0,
            row: 0,
            offset: 0,
        };
        assert!(m.encode(DecodedAddr { vault: 16, ..base }).is_err());
        assert!(m.encode(DecodedAddr { bank: 8, ..base }).is_err());
        assert!(m.encode(DecodedAddr { row: 1 << 18, ..base }).is_err());
        assert!(m.encode(DecodedAddr { offset: 64, ..base }).is_err());
    }

    #[test]
    fn custom_map_rejects_duplicate_fields() {
        let g = small_geom();
        assert!(CustomMap::new(g, [Field::Vault, Field::Vault, Field::Row]).is_err());
        assert!(CustomMap::new(g, [Field::Vault, Field::Bank, Field::Row]).is_ok());
    }

    #[test]
    fn vault_and_bank_fast_paths_match_decode() {
        let m = LowInterleaveMap::new(small_geom()).unwrap();
        for addr in (0..(1u64 << 16)).step_by(64) {
            let pa = PhysAddr::new(addr).unwrap();
            let d = m.decode(pa).unwrap();
            assert_eq!(m.vault_of(pa).unwrap(), d.vault);
            assert_eq!(m.bank_of(pa).unwrap(), d.bank);
        }
    }
}
