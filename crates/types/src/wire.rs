//! The `hmc-serve` wire protocol: length-prefixed binary frames.
//!
//! A service boundary for the simulator (in the spirit of Ramulator 2.0's
//! external-frontend philosophy) needs a compact, versioned, deterministic
//! encoding. Every frame on the wire is `[u32 length LE][u8 opcode][body]`
//! where `length` counts the opcode byte plus the body. All integers are
//! little-endian; variable-size fields (strings, byte blobs, op vectors)
//! carry a `u32` element count first.
//!
//! This module defines the frame *data model* and its byte-level codec
//! only — socket framing (reading exactly one length-prefixed frame off a
//! stream) lives in `hmc-serve::proto`, keeping `hmc-types` free of I/O.

use crate::error::{HmcError, Result};

/// Protocol version spoken by this build. Bumped on any incompatible
/// frame-layout change; `Hello`/`HelloAck` negotiate an exact match.
/// Version 2 appended the cell-fault counters to `Stats`/`Closed`.
pub const WIRE_VERSION: u16 = 3;

/// Upper bound on one frame's encoded size (opcode + body). Guards the
/// server against hostile or corrupt length prefixes.
pub const MAX_FRAME_LEN: u32 = 1 << 24;

/// One memory operation as carried by a `SubmitBatch` frame.
///
/// `kind` is the [`WireOp`] operation code (see [`WireOp::KIND_READ`] and
/// friends); `size_bytes` is the block size for reads/writes (16..=128 in
/// steps of 16; atomics ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOp {
    /// Operation code (`KIND_*` constants).
    pub kind: u8,
    /// Target physical address.
    pub addr: u64,
    /// Block size in bytes for reads and writes.
    pub size_bytes: u16,
}

impl WireOp {
    /// Memory read.
    pub const KIND_READ: u8 = 0;
    /// Memory write (response expected).
    pub const KIND_WRITE: u8 = 1;
    /// Posted (no-response) write.
    pub const KIND_POSTED_WRITE: u8 = 2;
    /// Dual 8-byte atomic add.
    pub const KIND_TWO_ADD8: u8 = 3;
    /// 16-byte atomic add.
    pub const KIND_ADD16: u8 = 4;
    /// Masked 8-byte bit-write.
    pub const KIND_BIT_WRITE: u8 = 5;
    /// Client-scheduled idle gap: run the device for `addr` cycles with
    /// no injection (open-loop arrival modeling). Produces no response;
    /// `size_bytes` is ignored. Sessions in fast-forward mode jump these
    /// dead cycles instead of stepping them.
    pub const KIND_IDLE: u8 = 6;

    /// An idle-gap operation spanning `cycles` device cycles.
    pub fn idle(cycles: u64) -> WireOp {
        WireOp {
            kind: WireOp::KIND_IDLE,
            addr: cycles,
            size_bytes: 0,
        }
    }
}

/// One completed response as carried by a `Responses` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// The 9-bit request tag the device correlated.
    pub tag: u16,
    /// True unless the device returned an error status.
    pub ok: bool,
    /// The response's 7-bit `ERRSTAT` wire encoding (0 on success;
    /// 0x05 marks a link-retry-exhausted poisoned response).
    pub status: u8,
    /// Request-to-response latency in simulated cycles.
    pub latency: u64,
    /// Response payload (read data; empty for write acknowledgements).
    pub data: Vec<u8>,
}

/// A per-session metrics snapshot as carried by `Stats`/`Closed` frames.
///
/// Mirrors `hmc_trace::StatsSnapshot` field-for-field; the duplication
/// keeps `hmc-types` at the bottom of the crate graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireStats {
    /// Simulated cycles executed for this session.
    pub cycles: u64,
    /// Requests accepted by the device.
    pub injected: u64,
    /// Responses received and correlated.
    pub completed: u64,
    /// Posted (no-response) requests injected.
    pub posted: u64,
    /// Error responses observed.
    pub errors: u64,
    /// Send attempts rejected with a queue-full stall.
    pub send_stalls: u64,
    /// Injection attempts deferred because all 512 tags were in flight.
    pub tag_stalls: u64,
    /// Send attempts rejected for lack of link flow-control tokens.
    pub token_stalls: u64,
    /// Responses whose tag could not be correlated.
    pub orphans: u64,
    /// Requests currently awaiting responses.
    pub outstanding: u32,
    /// Packets resident in device queues right now.
    pub queue_occupancy: u32,
    /// Operations waiting in the session's inflight queue.
    pub inflight: u32,
    /// Responses buffered for the client to poll.
    pub buffered_responses: u32,
    /// Mean request latency in simulated cycles.
    pub mean_latency: f64,
    /// Maximum request latency in simulated cycles.
    pub max_latency: u64,
    /// Row activations counted by the cell-fault model (0 when off).
    pub hammer_activations: u64,
    /// Bits flipped by injected RowHammer disturbance.
    pub bit_flips: u64,
    /// Targeted-row-refresh mitigations the device performed.
    pub trr_refreshes: u64,
    /// Cells decayed past the retention horizon.
    pub retention_decays: u64,
    /// Link-retry exchanges (detected transmission corruptions).
    pub link_retries: u64,
    /// Link retraining windows completed after retry exhaustion.
    pub link_retrains: u64,
    /// Responses delivered with a poisoned `ERRSTAT` after the link
    /// gave up on the request.
    pub poisoned_responses: u64,
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireErrorCode {
    /// The session ID is unknown (never opened, closed, or reaped idle).
    UnknownSession = 1,
    /// The frame could not be decoded or was not legal in this state.
    BadFrame = 2,
    /// The session's device configuration was rejected.
    BadConfig = 3,
    /// The server is draining and accepts no new sessions or work.
    ShuttingDown = 4,
    /// Protocol version mismatch in `Hello`.
    VersionMismatch = 5,
    /// An internal simulation error surfaced.
    Internal = 6,
}

impl WireErrorCode {
    /// Decode from the on-wire byte.
    pub fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::UnknownSession),
            2 => Some(Self::BadFrame),
            3 => Some(Self::BadConfig),
            4 => Some(Self::ShuttingDown),
            5 => Some(Self::VersionMismatch),
            6 => Some(Self::Internal),
            _ => None,
        }
    }
}

/// Typed backpressure reasons carried by [`Frame::Busy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum BusyReason {
    /// The server is at its concurrent-session limit.
    SessionsFull = 1,
    /// The session's bounded inflight queue has no free slot.
    InflightFull = 2,
    /// The session's response buffer is full; poll before submitting.
    ResponsesFull = 3,
}

impl BusyReason {
    /// Decode from the on-wire byte.
    pub fn from_u8(code: u8) -> Option<Self> {
        match code {
            1 => Some(Self::SessionsFull),
            2 => Some(Self::InflightFull),
            3 => Some(Self::ResponsesFull),
            _ => None,
        }
    }
}

/// Every frame of the `hmc-serve` protocol.
///
/// Client-to-server frames use opcodes `0x01..=0x07`; server-to-client
/// frames use `0x81..=0x87` plus the shared `Busy` (`0x7e`) and `Error`
/// (`0x7f`) frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client greeting; must be the first frame on a connection.
    Hello {
        /// The client's [`WIRE_VERSION`].
        version: u16,
    },
    /// Server reply to a version-compatible `Hello`.
    HelloAck {
        /// The server's [`WIRE_VERSION`].
        version: u16,
        /// Admission-control limit on concurrent sessions.
        max_sessions: u32,
        /// Sessions currently open.
        active_sessions: u32,
    },
    /// Open a simulation session from a preset name or a config JSON body.
    OpenSession {
        /// Paper preset name (`4l8b`, `4l16b`, `8l8b`, `8l16b`, `small`);
        /// empty to use `config_json` instead.
        preset: String,
        /// A `DeviceConfig` JSON document (the `configs/*.json` schema);
        /// ignored unless `preset` is empty.
        config_json: String,
        /// Requested inflight-queue bound (0 = server default; clamped).
        inflight_limit: u32,
        /// Requested response-buffer bound (0 = server default; clamped).
        response_limit: u32,
    },
    /// Server reply carrying the new session's ID.
    SessionOpened {
        /// Session handle for subsequent frames.
        session: u64,
    },
    /// Submit a batch of memory operations to a session.
    SubmitBatch {
        /// Target session.
        session: u64,
        /// Operations, in issue order.
        ops: Vec<WireOp>,
    },
    /// Server reply: how much of the batch was admitted.
    BatchAccepted {
        /// Operations admitted to the inflight queue (prefix of the batch).
        accepted: u32,
        /// Free inflight-queue slots remaining after admission.
        queue_free: u32,
    },
    /// Ask for up to `max` buffered responses.
    Poll {
        /// Target session.
        session: u64,
        /// Maximum responses to return (0 = server default).
        max: u32,
    },
    /// Server reply to `Poll`.
    Responses {
        /// Completed responses, in device completion order.
        items: Vec<WireResponse>,
        /// Requests still awaiting responses after this poll.
        outstanding: u32,
        /// True when the session has no queued work, no outstanding
        /// requests, and an idle device.
        idle: bool,
    },
    /// Ask for a metrics snapshot.
    SnapshotStats {
        /// Target session.
        session: u64,
    },
    /// Server reply to `SnapshotStats`.
    Stats(WireStats),
    /// Close a session, releasing its device.
    CloseSession {
        /// Target session.
        session: u64,
    },
    /// Server reply to `CloseSession` with the session's final metrics.
    Closed(WireStats),
    /// Ask the server to begin a graceful drain (stop accepting, quiesce
    /// every device, flush responses, exit 0) — the in-band equivalent of
    /// SIGTERM.
    Shutdown,
    /// Server acknowledgement of `Shutdown`.
    ShuttingDown,
    /// Typed backpressure: the request was rejected, retry later.
    Busy {
        /// Why the request was rejected ([`BusyReason`] byte).
        reason: u8,
        /// Suggested retry delay in milliseconds.
        retry_hint_ms: u32,
    },
    /// Typed failure ([`WireErrorCode`] byte plus a human-readable cause).
    Error {
        /// Machine-readable error class.
        code: u8,
        /// Human-readable explanation.
        message: String,
    },
}

const OP_HELLO: u8 = 0x01;
const OP_OPEN_SESSION: u8 = 0x02;
const OP_SUBMIT_BATCH: u8 = 0x03;
const OP_POLL: u8 = 0x04;
const OP_SNAPSHOT_STATS: u8 = 0x05;
const OP_CLOSE_SESSION: u8 = 0x06;
const OP_SHUTDOWN: u8 = 0x07;
const OP_HELLO_ACK: u8 = 0x81;
const OP_SESSION_OPENED: u8 = 0x82;
const OP_BATCH_ACCEPTED: u8 = 0x83;
const OP_RESPONSES: u8 = 0x84;
const OP_STATS: u8 = 0x85;
const OP_CLOSED: u8 = 0x86;
const OP_SHUTTING_DOWN: u8 = 0x87;
const OP_BUSY: u8 = 0x7e;
const OP_ERROR: u8 = 0x7f;

impl Frame {
    /// The frame's opcode byte.
    pub fn opcode(&self) -> u8 {
        match self {
            Frame::Hello { .. } => OP_HELLO,
            Frame::OpenSession { .. } => OP_OPEN_SESSION,
            Frame::SubmitBatch { .. } => OP_SUBMIT_BATCH,
            Frame::Poll { .. } => OP_POLL,
            Frame::SnapshotStats { .. } => OP_SNAPSHOT_STATS,
            Frame::CloseSession { .. } => OP_CLOSE_SESSION,
            Frame::Shutdown => OP_SHUTDOWN,
            Frame::HelloAck { .. } => OP_HELLO_ACK,
            Frame::SessionOpened { .. } => OP_SESSION_OPENED,
            Frame::BatchAccepted { .. } => OP_BATCH_ACCEPTED,
            Frame::Responses { .. } => OP_RESPONSES,
            Frame::Stats(_) => OP_STATS,
            Frame::Closed(_) => OP_CLOSED,
            Frame::ShuttingDown => OP_SHUTTING_DOWN,
            Frame::Busy { .. } => OP_BUSY,
            Frame::Error { .. } => OP_ERROR,
        }
    }

    /// Encode opcode + body (without the length prefix).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(self.opcode());
        match self {
            Frame::Hello { version } => put_u16(&mut out, *version),
            Frame::HelloAck {
                version,
                max_sessions,
                active_sessions,
            } => {
                put_u16(&mut out, *version);
                put_u32(&mut out, *max_sessions);
                put_u32(&mut out, *active_sessions);
            }
            Frame::OpenSession {
                preset,
                config_json,
                inflight_limit,
                response_limit,
            } => {
                put_str(&mut out, preset);
                put_str(&mut out, config_json);
                put_u32(&mut out, *inflight_limit);
                put_u32(&mut out, *response_limit);
            }
            Frame::SessionOpened { session } => put_u64(&mut out, *session),
            Frame::SubmitBatch { session, ops } => {
                put_u64(&mut out, *session);
                put_u32(&mut out, ops.len() as u32);
                for op in ops {
                    out.push(op.kind);
                    put_u64(&mut out, op.addr);
                    put_u16(&mut out, op.size_bytes);
                }
            }
            Frame::BatchAccepted {
                accepted,
                queue_free,
            } => {
                put_u32(&mut out, *accepted);
                put_u32(&mut out, *queue_free);
            }
            Frame::Poll { session, max } => {
                put_u64(&mut out, *session);
                put_u32(&mut out, *max);
            }
            Frame::Responses {
                items,
                outstanding,
                idle,
            } => {
                put_u32(&mut out, items.len() as u32);
                for r in items {
                    put_u16(&mut out, r.tag);
                    out.push(r.ok as u8);
                    out.push(r.status);
                    put_u64(&mut out, r.latency);
                    put_u32(&mut out, r.data.len() as u32);
                    out.extend_from_slice(&r.data);
                }
                put_u32(&mut out, *outstanding);
                out.push(*idle as u8);
            }
            Frame::SnapshotStats { session } => put_u64(&mut out, *session),
            Frame::Stats(s) | Frame::Closed(s) => put_stats(&mut out, s),
            Frame::CloseSession { session } => put_u64(&mut out, *session),
            Frame::Shutdown | Frame::ShuttingDown => {}
            Frame::Busy {
                reason,
                retry_hint_ms,
            } => {
                out.push(*reason);
                put_u32(&mut out, *retry_hint_ms);
            }
            Frame::Error { code, message } => {
                out.push(*code);
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Encode the full on-wire form: `[u32 length][opcode][body]`.
    pub fn encode_framed(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Decode a frame from opcode + body bytes (the length prefix already
    /// stripped). Fails with [`HmcError::Wire`] on malformed input.
    pub fn decode_body(body: &[u8]) -> Result<Frame> {
        let mut c = Cursor { buf: body, pos: 0 };
        let opcode = c.u8()?;
        let frame = match opcode {
            OP_HELLO => Frame::Hello { version: c.u16()? },
            OP_HELLO_ACK => Frame::HelloAck {
                version: c.u16()?,
                max_sessions: c.u32()?,
                active_sessions: c.u32()?,
            },
            OP_OPEN_SESSION => Frame::OpenSession {
                preset: c.string()?,
                config_json: c.string()?,
                inflight_limit: c.u32()?,
                response_limit: c.u32()?,
            },
            OP_SESSION_OPENED => Frame::SessionOpened { session: c.u64()? },
            OP_SUBMIT_BATCH => {
                let session = c.u64()?;
                let n = c.u32()? as usize;
                if n > body.len() {
                    return Err(HmcError::Wire(format!(
                        "batch claims {n} ops but the frame is {} bytes",
                        body.len()
                    )));
                }
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(WireOp {
                        kind: c.u8()?,
                        addr: c.u64()?,
                        size_bytes: c.u16()?,
                    });
                }
                Frame::SubmitBatch { session, ops }
            }
            OP_BATCH_ACCEPTED => Frame::BatchAccepted {
                accepted: c.u32()?,
                queue_free: c.u32()?,
            },
            OP_POLL => Frame::Poll {
                session: c.u64()?,
                max: c.u32()?,
            },
            OP_RESPONSES => {
                let n = c.u32()? as usize;
                if n > body.len() {
                    return Err(HmcError::Wire(format!(
                        "poll reply claims {n} responses but the frame is {} bytes",
                        body.len()
                    )));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(WireResponse {
                        tag: c.u16()?,
                        ok: c.u8()? != 0,
                        status: c.u8()?,
                        latency: c.u64()?,
                        data: c.blob()?,
                    });
                }
                Frame::Responses {
                    items,
                    outstanding: c.u32()?,
                    idle: c.u8()? != 0,
                }
            }
            OP_SNAPSHOT_STATS => Frame::SnapshotStats { session: c.u64()? },
            OP_STATS => Frame::Stats(get_stats(&mut c)?),
            OP_CLOSED => Frame::Closed(get_stats(&mut c)?),
            OP_CLOSE_SESSION => Frame::CloseSession { session: c.u64()? },
            OP_SHUTDOWN => Frame::Shutdown,
            OP_SHUTTING_DOWN => Frame::ShuttingDown,
            OP_BUSY => Frame::Busy {
                reason: c.u8()?,
                retry_hint_ms: c.u32()?,
            },
            OP_ERROR => Frame::Error {
                code: c.u8()?,
                message: c.string()?,
            },
            other => {
                return Err(HmcError::Wire(format!("unknown opcode 0x{other:02x}")))
            }
        };
        if c.pos != body.len() {
            return Err(HmcError::Wire(format!(
                "{} trailing bytes after frame 0x{opcode:02x}",
                body.len() - c.pos
            )));
        }
        Ok(frame)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_stats(out: &mut Vec<u8>, s: &WireStats) {
    put_u64(out, s.cycles);
    put_u64(out, s.injected);
    put_u64(out, s.completed);
    put_u64(out, s.posted);
    put_u64(out, s.errors);
    put_u64(out, s.send_stalls);
    put_u64(out, s.tag_stalls);
    put_u64(out, s.token_stalls);
    put_u64(out, s.orphans);
    put_u32(out, s.outstanding);
    put_u32(out, s.queue_occupancy);
    put_u32(out, s.inflight);
    put_u32(out, s.buffered_responses);
    put_u64(out, s.mean_latency.to_bits());
    put_u64(out, s.max_latency);
    put_u64(out, s.hammer_activations);
    put_u64(out, s.bit_flips);
    put_u64(out, s.trr_refreshes);
    put_u64(out, s.retention_decays);
    put_u64(out, s.link_retries);
    put_u64(out, s.link_retrains);
    put_u64(out, s.poisoned_responses);
}

fn get_stats(c: &mut Cursor<'_>) -> Result<WireStats> {
    Ok(WireStats {
        cycles: c.u64()?,
        injected: c.u64()?,
        completed: c.u64()?,
        posted: c.u64()?,
        errors: c.u64()?,
        send_stalls: c.u64()?,
        tag_stalls: c.u64()?,
        token_stalls: c.u64()?,
        orphans: c.u64()?,
        outstanding: c.u32()?,
        queue_occupancy: c.u32()?,
        inflight: c.u32()?,
        buffered_responses: c.u32()?,
        mean_latency: f64::from_bits(c.u64()?),
        max_latency: c.u64()?,
        hammer_activations: c.u64()?,
        bit_flips: c.u64()?,
        trr_refreshes: c.u64()?,
        retention_decays: c.u64()?,
        link_retries: c.u64()?,
        link_retrains: c.u64()?,
        poisoned_responses: c.u64()?,
    })
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(HmcError::Wire(format!(
                "truncated frame: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn blob(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn string(&mut self) -> Result<String> {
        let bytes = self.blob()?;
        String::from_utf8(bytes)
            .map_err(|e| HmcError::Wire(format!("invalid UTF-8 in string field: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let body = f.encode_body();
        let back = Frame::decode_body(&body).unwrap_or_else(|e| panic!("{f:?}: {e}"));
        assert_eq!(f, back);
        // The framed form is the body plus a 4-byte length prefix.
        let framed = f.encode_framed();
        assert_eq!(framed.len(), body.len() + 4);
        let len = u32::from_le_bytes(framed[..4].try_into().unwrap()) as usize;
        assert_eq!(len, body.len());
        assert_eq!(&framed[4..], &body[..]);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello { version: 1 });
        roundtrip(Frame::HelloAck {
            version: 1,
            max_sessions: 64,
            active_sessions: 3,
        });
        roundtrip(Frame::OpenSession {
            preset: "4l8b".into(),
            config_json: String::new(),
            inflight_limit: 4096,
            response_limit: 0,
        });
        roundtrip(Frame::OpenSession {
            preset: String::new(),
            config_json: "{\"num_links\":4}".into(),
            inflight_limit: 0,
            response_limit: 128,
        });
        roundtrip(Frame::SessionOpened { session: 42 });
        roundtrip(Frame::SubmitBatch {
            session: 42,
            ops: vec![
                WireOp {
                    kind: WireOp::KIND_READ,
                    addr: 0x1234_5678_9abc,
                    size_bytes: 64,
                },
                WireOp {
                    kind: WireOp::KIND_TWO_ADD8,
                    addr: 0,
                    size_bytes: 16,
                },
            ],
        });
        roundtrip(Frame::SubmitBatch {
            session: 0,
            ops: vec![],
        });
        roundtrip(Frame::BatchAccepted {
            accepted: 100,
            queue_free: 28,
        });
        roundtrip(Frame::Poll {
            session: 42,
            max: 512,
        });
        roundtrip(Frame::Responses {
            items: vec![
                WireResponse {
                    tag: 511,
                    ok: true,
                    status: 0,
                    latency: 19,
                    data: vec![1, 2, 3, 4],
                },
                WireResponse {
                    tag: 0,
                    ok: false,
                    status: 0x05,
                    latency: 1,
                    data: vec![],
                },
            ],
            outstanding: 7,
            idle: false,
        });
        roundtrip(Frame::SnapshotStats { session: 42 });
        roundtrip(Frame::Stats(WireStats {
            cycles: 1000,
            injected: 500,
            completed: 499,
            posted: 1,
            errors: 0,
            send_stalls: 17,
            tag_stalls: 3,
            token_stalls: 5,
            orphans: 0,
            outstanding: 1,
            queue_occupancy: 2,
            inflight: 0,
            buffered_responses: 12,
            mean_latency: 19.25,
            max_latency: 83,
            hammer_activations: 4096,
            bit_flips: 3,
            trr_refreshes: 2,
            retention_decays: 1,
            link_retries: 9,
            link_retrains: 1,
            poisoned_responses: 4,
        }));
        roundtrip(Frame::Closed(WireStats::default()));
        roundtrip(Frame::CloseSession { session: 42 });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::ShuttingDown);
        roundtrip(Frame::Busy {
            reason: BusyReason::InflightFull as u8,
            retry_hint_ms: 5,
        });
        roundtrip(Frame::Error {
            code: WireErrorCode::UnknownSession as u8,
            message: "session 9 was reaped".into(),
        });
    }

    #[test]
    fn truncated_frames_are_rejected() {
        for f in [
            Frame::Hello { version: 1 },
            Frame::SessionOpened { session: 42 },
            Frame::Stats(WireStats::default()),
            Frame::Error {
                code: 2,
                message: "x".into(),
            },
        ] {
            let body = f.encode_body();
            for cut in 1..body.len() {
                assert!(
                    Frame::decode_body(&body[..cut]).is_err(),
                    "{f:?} truncated to {cut} bytes must not decode"
                );
            }
        }
    }

    #[test]
    fn unknown_opcode_and_trailing_bytes_are_rejected() {
        assert!(Frame::decode_body(&[0x55]).is_err());
        assert!(Frame::decode_body(&[]).is_err());
        let mut body = Frame::Shutdown.encode_body();
        body.push(0);
        assert!(Frame::decode_body(&body).is_err(), "trailing byte");
    }

    #[test]
    fn hostile_counts_do_not_overallocate() {
        // A batch claiming u32::MAX ops must fail fast, not try to reserve.
        let mut body = vec![OP_SUBMIT_BATCH];
        body.extend_from_slice(&42u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Frame::decode_body(&body).is_err());
    }

    #[test]
    fn error_and_busy_codes_roundtrip() {
        for c in [
            WireErrorCode::UnknownSession,
            WireErrorCode::BadFrame,
            WireErrorCode::BadConfig,
            WireErrorCode::ShuttingDown,
            WireErrorCode::VersionMismatch,
            WireErrorCode::Internal,
        ] {
            assert_eq!(WireErrorCode::from_u8(c as u8), Some(c));
        }
        assert_eq!(WireErrorCode::from_u8(0), None);
        for r in [
            BusyReason::SessionsFull,
            BusyReason::InflightFull,
            BusyReason::ResponsesFull,
        ] {
            assert_eq!(BusyReason::from_u8(r as u8), Some(r));
        }
        assert_eq!(BusyReason::from_u8(99), None);
    }

    #[test]
    fn nan_latency_survives_the_wire() {
        // mean_latency is bit-preserved, not value-compared.
        let s = WireStats {
            mean_latency: f64::NAN,
            ..WireStats::default()
        };
        let body = Frame::Stats(s).encode_body();
        match Frame::decode_body(&body).unwrap() {
            Frame::Stats(back) => assert!(back.mean_latency.is_nan()),
            other => panic!("{other:?}"),
        }
    }
}
