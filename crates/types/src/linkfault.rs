//! Link-level fault-injection configuration: SERDES transit errors and
//! the HMC link-retry protocol's escalation knobs.
//!
//! HMC-Sim's requirement 5 calls for "functional simulation, error
//! simulation and performance simulation" (paper §IV). The link-retry
//! subsystem models the spec's error path end to end: a corrupted
//! transmission is CRC-detected at the receiver, which triggers a
//! StartRetry/IRTRY exchange and an in-order retransmission from the
//! sender's retry buffer; a packet that stays corrupt past the
//! configured attempt cap takes the link down for a retraining window
//! and completes with a poisoned `ERRSTAT` response instead of
//! silently succeeding.
//!
//! Like [`crate::cellfault::CellFaultConfig`], this type is pure data
//! (all-integer, `Copy`, `Eq`, serde) so it can ride in `SimParams`,
//! device-config JSON, and the serve wire protocol. Corruption
//! decisions are stateless hashes of
//! `(seed, cube, link, send_seq, attempt)`, so the fault stream is
//! bit-identical across thread counts and stepped/fast-forward engine
//! modes. The live retry state lives in `hmc_core` next to the link
//! queues it governs.

use serde::{Deserialize, Serialize};

use crate::error::{HmcError, Result};

/// Deterministic link fault-injection parameters.
///
/// Probabilities are expressed in parts per million so the whole config
/// stays integer-valued (`Copy + Eq`, usable inside `SimParams`). The
/// subsystem is off unless a config is installed; an installed config
/// with `error_rate_ppm == 0` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkFaultConfig {
    /// Per-transmission corruption probability in parts per million.
    /// Every transmission attempt (initial send and each retry) draws
    /// independently. Values at or above 1 000 000 corrupt every
    /// transmission.
    pub error_rate_ppm: u32,
    /// Cycles a detected corruption stalls the link head while the
    /// StartRetry/IRTRY exchange runs and the packet is retransmitted
    /// from the retry buffer.
    pub retry_cycles: u64,
    /// Retransmission attempts after the initial transmission before
    /// the link gives up: a packet still corrupt after `retry_limit`
    /// retries is aborted with a poisoned-`ERRSTAT` response and the
    /// link goes down for retraining.
    pub retry_limit: u32,
    /// Cycles the link trains back up after a retry exhaustion before
    /// it moves packets again. The wire SEQ counter restarts afterward.
    pub retrain_cycles: u64,
    /// Seed of the deterministic corruption streams. Corruption
    /// decisions are pure functions of
    /// `(seed, cube, link, send_seq, attempt)`, so they are independent
    /// of thread count and engine mode.
    pub seed: u64,
}

impl Default for LinkFaultConfig {
    fn default() -> Self {
        LinkFaultConfig {
            error_rate_ppm: 0,
            retry_cycles: 8,
            retry_limit: 3,
            retrain_cycles: 64,
            seed: 0x5eed_cafe,
        }
    }
}

// Hand-written serde impls (the vendored stand-in has no container
// defaults): config files may set only the knobs they care about, and
// each missing field falls back to this struct's `Default` value.
impl Serialize for LinkFaultConfig {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            ("error_rate_ppm".into(), self.error_rate_ppm.to_value()),
            ("retry_cycles".into(), self.retry_cycles.to_value()),
            ("retry_limit".into(), self.retry_limit.to_value()),
            ("retrain_cycles".into(), self.retrain_cycles.to_value()),
            ("seed".into(), self.seed.to_value()),
        ])
    }
}

impl Deserialize for LinkFaultConfig {
    fn from_value(v: &serde::value::Value) -> std::result::Result<Self, serde::de::Error> {
        fn field_or<T: Deserialize>(
            fields: &[(String, serde::value::Value)],
            name: &str,
            fallback: T,
        ) -> std::result::Result<T, serde::de::Error> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, v)) => T::from_value(v).map_err(|e| {
                    serde::de::Error::custom(format!(
                        "field `{name}` of `LinkFaultConfig`: {e}"
                    ))
                }),
                None => Ok(fallback),
            }
        }
        let fields = v.as_object().ok_or_else(|| {
            serde::de::Error::custom("expected an object for `LinkFaultConfig`")
        })?;
        let d = LinkFaultConfig::default();
        Ok(LinkFaultConfig {
            error_rate_ppm: field_or(fields, "error_rate_ppm", d.error_rate_ppm)?,
            retry_cycles: field_or(fields, "retry_cycles", d.retry_cycles)?,
            retry_limit: field_or(fields, "retry_limit", d.retry_limit)?,
            retrain_cycles: field_or(fields, "retrain_cycles", d.retrain_cycles)?,
            seed: field_or(fields, "seed", d.seed)?,
        })
    }
}

impl LinkFaultConfig {
    /// Replace the per-transmission error rate in ppm (builder style).
    pub fn with_error_rate_ppm(mut self, ppm: u32) -> Self {
        self.error_rate_ppm = ppm;
        self
    }

    /// Replace the retry stall window in cycles (builder style).
    pub fn with_retry_cycles(mut self, cycles: u64) -> Self {
        self.retry_cycles = cycles;
        self
    }

    /// Replace the retransmission attempt cap (builder style).
    pub fn with_retry_limit(mut self, limit: u32) -> Self {
        self.retry_limit = limit;
        self
    }

    /// Replace the retraining window in cycles (builder style).
    pub fn with_retrain_cycles(mut self, cycles: u64) -> Self {
        self.retrain_cycles = cycles;
        self
    }

    /// Replace the corruption-stream seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-transmission error rate as a fraction in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        (self.error_rate_ppm.min(1_000_000) as f64) / 1_000_000.0
    }

    /// Apply one of the shared link-fault CLI flags to `slot`, used by
    /// every frontend so the flag vocabulary cannot drift:
    /// `--link-error-rate PPM`, `--link-retry-limit N`,
    /// `--retrain-cycles N`, `--link-retry-cycles N`,
    /// `--link-fault-seed HEX`.
    ///
    /// Returns `Ok(false)` when `flag` is not a link-fault flag (the
    /// caller keeps parsing), `Ok(true)` when it was consumed — a `None`
    /// slot is materialized with defaults first — and an error when the
    /// flag's value is missing or malformed.
    pub fn apply_flag(
        slot: &mut Option<LinkFaultConfig>,
        flag: &str,
        value: Option<&str>,
    ) -> Result<bool> {
        if !matches!(
            flag,
            "--link-error-rate"
                | "--link-retry-limit"
                | "--retrain-cycles"
                | "--link-retry-cycles"
                | "--link-fault-seed"
        ) {
            return Ok(false);
        }
        let v = value
            .ok_or_else(|| HmcError::InvalidConfig(format!("{flag} needs a value")))?;
        let mut cfg = slot.unwrap_or_default();
        match flag {
            "--link-error-rate" => {
                cfg.error_rate_ppm = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs a ppm value, got {v:?}"))
                })?;
            }
            "--link-retry-limit" => {
                cfg.retry_limit = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs an attempt count, got {v:?}"))
                })?;
            }
            "--retrain-cycles" => {
                cfg.retrain_cycles = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs a cycle count, got {v:?}"))
                })?;
            }
            "--link-retry-cycles" => {
                cfg.retry_cycles = v.parse().map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs a cycle count, got {v:?}"))
                })?;
            }
            _ => {
                let hex = v.trim_start_matches("0x");
                cfg.seed = u64::from_str_radix(hex, 16).map_err(|_| {
                    HmcError::InvalidConfig(format!("{flag} needs a hex seed, got {v:?}"))
                })?;
            }
        }
        *slot = Some(cfg);
        Ok(true)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.retry_cycles == 0 {
            return Err(HmcError::InvalidConfig(
                "link-fault retry_cycles must be non-zero".into(),
            ));
        }
        if self.retrain_cycles == 0 {
            return Err(HmcError::InvalidConfig(
                "link-fault retrain_cycles must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_serialize() {
        let c = LinkFaultConfig::default();
        c.validate().unwrap();
        assert_eq!(c.error_rate_ppm, 0, "link errors are opt-in");
        let json = serde_json::to_string(&c).unwrap();
        let back: LinkFaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn partial_json_fills_defaults() {
        let c: LinkFaultConfig =
            serde_json::from_str(r#"{"error_rate_ppm": 5000, "retry_limit": 1}"#).unwrap();
        assert_eq!(c.error_rate_ppm, 5_000);
        assert_eq!(c.retry_limit, 1);
        assert_eq!(c.retrain_cycles, LinkFaultConfig::default().retrain_cycles);
    }

    #[test]
    fn error_rate_saturates_at_unity() {
        assert_eq!(LinkFaultConfig::default().error_rate(), 0.0);
        let full = LinkFaultConfig::default().with_error_rate_ppm(2_000_000);
        assert_eq!(full.error_rate(), 1.0);
        let half = LinkFaultConfig::default().with_error_rate_ppm(500_000);
        assert!((half.error_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cli_flags_materialize_and_compose() {
        let mut slot = None;
        assert!(!LinkFaultConfig::apply_flag(&mut slot, "--seed", Some("1")).unwrap());
        assert!(slot.is_none(), "unrelated flags leave the slot untouched");
        assert!(LinkFaultConfig::apply_flag(&mut slot, "--link-error-rate", Some("2500")).unwrap());
        assert!(LinkFaultConfig::apply_flag(&mut slot, "--link-retry-limit", Some("5")).unwrap());
        assert!(LinkFaultConfig::apply_flag(&mut slot, "--retrain-cycles", Some("128")).unwrap());
        assert!(
            LinkFaultConfig::apply_flag(&mut slot, "--link-fault-seed", Some("0xBEEF")).unwrap()
        );
        let cfg = slot.unwrap();
        assert_eq!(cfg.error_rate_ppm, 2_500);
        assert_eq!(cfg.retry_limit, 5);
        assert_eq!(cfg.retrain_cycles, 128);
        assert_eq!(cfg.seed, 0xBEEF);
        assert_eq!(cfg.retry_cycles, LinkFaultConfig::default().retry_cycles);
        let mut slot = None;
        assert!(LinkFaultConfig::apply_flag(&mut slot, "--link-error-rate", None).is_err());
        assert!(LinkFaultConfig::apply_flag(&mut slot, "--link-retry-limit", Some("x")).is_err());
        assert!(LinkFaultConfig::apply_flag(&mut slot, "--link-fault-seed", Some("zz")).is_err());
    }

    #[test]
    fn zero_windows_rejected() {
        assert!(LinkFaultConfig::default().with_retry_cycles(0).validate().is_err());
        assert!(LinkFaultConfig::default().with_retrain_cycles(0).validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = LinkFaultConfig::default()
            .with_error_rate_ppm(10_000)
            .with_retry_cycles(4)
            .with_retry_limit(2)
            .with_retrain_cycles(32)
            .with_seed(42);
        assert_eq!(c.error_rate_ppm, 10_000);
        assert_eq!(c.retry_cycles, 4);
        assert_eq!(c.retry_limit, 2);
        assert_eq!(c.retrain_cycles, 32);
        assert_eq!(c.seed, 42);
    }
}
