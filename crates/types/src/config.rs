//! Device configuration: the flexible geometry knobs of the HMC spec.
//!
//! The specification "permits the flexible interpretation and implementation
//! of the target device … with respect to capacity, bandwidth, connectivity
//! and internal logic block functionality" (paper §I). HMC-Sim mirrors this
//! with an initialization call taking the device count, link count, vault
//! count, queue depths, bank/DRAM counts and capacity (paper Fig. 4).
//!
//! [`DeviceConfig`] captures one device's geometry; a simulation object
//! requires all devices to be physically homogeneous (§V.A), so one config
//! serves the whole object. The four device configurations evaluated in the
//! paper's §VI are provided as presets.

use serde::{Deserialize, Serialize};

use crate::address::{LowInterleaveMap, MapGeometry};
use crate::cellfault::CellFaultConfig;
use crate::command::BlockSize;
use crate::error::{HmcError, Result};
use crate::interconnect::{ArbitrationKind, InterconnectKind};
use crate::linkfault::LinkFaultConfig;
use crate::timing::TimingKind;
use crate::units::{aggregate_bandwidth_gbs, LinkSpeed, GIB};

/// Whether banks store actual data or only model timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorageMode {
    /// Reads and writes move real bytes through sparse backing pages.
    Functional,
    /// Data movement is skipped; only timing/trace behaviour is modeled.
    /// Reads return zero-filled payloads. Used for the Table I runs, which
    /// measure cycles over 33.5M requests.
    TimingOnly,
}

/// Number of vaults attached to each quad unit (fixed by the spec: "Each
/// quad unit represents four vault units", paper §III.A).
pub const VAULTS_PER_QUAD: u16 = 4;

/// Geometry and queue configuration of a single HMC device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// External links: 4 or 8 (§III.A).
    pub num_links: u8,
    /// Vaults: must equal `4 × num_links` (one quad of four vaults per link).
    pub num_vaults: u16,
    /// Banks per vault: a power of two (8 or 16 in the paper's evaluation).
    pub banks_per_vault: u16,
    /// DRAM dies per bank (data-path width modelling; 16 by default).
    pub drams_per_bank: u16,
    /// Total device capacity in bytes; must be a power of two consistent
    /// with the vault/bank geometry.
    pub capacity_bytes: u64,
    /// Crossbar (link) queue depth in slots — 128 in the paper's tests.
    pub xbar_depth: usize,
    /// Vault queue depth in slots — 64 in the paper's tests.
    pub vault_depth: usize,
    /// SERDES lane rate.
    pub link_speed: LinkSpeed,
    /// SERDES lanes per link: 16 (full-width, 4-link) or 8 (8-link).
    pub lanes_per_link: u8,
    /// Maximum block request size; sets the address map's offset field.
    pub block_size: BlockSize,
    /// Functional or timing-only data storage.
    pub storage_mode: StorageMode,
    /// Vault timing backend the simulation starts with (selectable later
    /// through `SimParams`; absent from older config files, defaulting to
    /// the paper's constant-time model).
    #[serde(default)]
    pub timing: TimingKind,
    /// Intra-cube interconnect fabric the simulation starts with
    /// (selectable later through `SimParams`; absent from older config
    /// files, defaulting to the paper's idealized full crossbar).
    #[serde(default)]
    pub interconnect: InterconnectKind,
    /// NoC arbitration policy (used by the ring and mesh fabrics; absent
    /// from older config files, defaulting to round-robin).
    #[serde(default)]
    pub arbitration: ArbitrationKind,
    /// Cell-level fault injection (RowHammer + retention decay). `None`
    /// — the default, and what older config files deserialize to —
    /// leaves the DRAM array perfect and the fault path compiled out of
    /// the hot loop.
    #[serde(default)]
    pub cell_faults: Option<CellFaultConfig>,
    /// Link-level fault injection (SERDES transit errors driving the
    /// link-retry protocol). `None` — the default, and what older
    /// config files deserialize to — leaves the links perfect and the
    /// retry path compiled out of the hot loop.
    #[serde(default)]
    pub link_faults: Option<LinkFaultConfig>,
}

impl DeviceConfig {
    /// A small configuration handy for tests and examples: 4 links,
    /// 16 vaults, 8 banks, 2 GiB, shallow queues.
    pub fn small() -> Self {
        DeviceConfig {
            num_links: 4,
            num_vaults: 16,
            banks_per_vault: 8,
            drams_per_bank: 16,
            capacity_bytes: 2 * GIB,
            xbar_depth: 8,
            vault_depth: 4,
            link_speed: LinkSpeed::Gbps10,
            lanes_per_link: 16,
            block_size: BlockSize::B128,
            storage_mode: StorageMode::Functional,
            timing: TimingKind::Classic,
            interconnect: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            cell_faults: None,
            link_faults: None,
        }
    }

    /// Paper §VI device 1: 4-link, 8 banks/vault, 2 GB.
    pub fn paper_4link_8bank_2gb() -> Self {
        DeviceConfig {
            num_links: 4,
            num_vaults: 16,
            banks_per_vault: 8,
            drams_per_bank: 16,
            capacity_bytes: 2 * GIB,
            xbar_depth: 128,
            vault_depth: 64,
            link_speed: LinkSpeed::Gbps10,
            lanes_per_link: 16,
            block_size: BlockSize::B128,
            storage_mode: StorageMode::Functional,
            timing: TimingKind::Classic,
            interconnect: InterconnectKind::Crossbar,
            arbitration: ArbitrationKind::RoundRobin,
            cell_faults: None,
            link_faults: None,
        }
    }

    /// Paper §VI device 2: 4-link, 16 banks/vault, 4 GB.
    pub fn paper_4link_16bank_4gb() -> Self {
        DeviceConfig {
            banks_per_vault: 16,
            capacity_bytes: 4 * GIB,
            ..Self::paper_4link_8bank_2gb()
        }
    }

    /// Paper §VI device 3: 8-link, 8 banks/vault, 4 GB.
    pub fn paper_8link_8bank_4gb() -> Self {
        DeviceConfig {
            num_links: 8,
            num_vaults: 32,
            capacity_bytes: 4 * GIB,
            lanes_per_link: 8,
            ..Self::paper_4link_8bank_2gb()
        }
    }

    /// Paper §VI device 4: 8-link, 16 banks/vault, 8 GB.
    pub fn paper_8link_16bank_8gb() -> Self {
        DeviceConfig {
            num_links: 8,
            num_vaults: 32,
            banks_per_vault: 16,
            capacity_bytes: 8 * GIB,
            lanes_per_link: 8,
            ..Self::paper_4link_8bank_2gb()
        }
    }

    /// All four paper configurations in Table I order, with their labels.
    pub fn paper_configs() -> [(&'static str, DeviceConfig); 4] {
        [
            ("4-Link; 8-Bank; 2GB", Self::paper_4link_8bank_2gb()),
            ("4-Link; 16-Bank; 4GB", Self::paper_4link_16bank_4gb()),
            ("8-Link; 8-Bank; 4GB", Self::paper_8link_8bank_4gb()),
            ("8-Link; 16-Bank; 8GB", Self::paper_8link_16bank_8gb()),
        ]
    }

    /// Look up a preset by its short CLI/service name (`4l8b`, `4l16b`,
    /// `8l8b`, `8l16b`, `small`). Returns `None` for unknown names.
    pub fn by_name(name: &str) -> Option<DeviceConfig> {
        match name {
            "4l8b" => Some(Self::paper_4link_8bank_2gb()),
            "4l16b" => Some(Self::paper_4link_16bank_4gb()),
            "8l8b" => Some(Self::paper_8link_8bank_4gb()),
            "8l16b" => Some(Self::paper_8link_16bank_8gb()),
            "small" => Some(Self::small()),
            _ => None,
        }
    }

    // ------------------------------------------------------------- builders

    /// Replace the storage mode (builder style).
    pub fn with_storage_mode(mut self, mode: StorageMode) -> Self {
        self.storage_mode = mode;
        self
    }

    /// Replace both queue depths (builder style).
    pub fn with_queue_depths(mut self, xbar: usize, vault: usize) -> Self {
        self.xbar_depth = xbar;
        self.vault_depth = vault;
        self
    }

    /// Replace the block (maximum request) size (builder style).
    pub fn with_block_size(mut self, block: BlockSize) -> Self {
        self.block_size = block;
        self
    }

    /// Replace the vault timing backend (builder style).
    pub fn with_timing(mut self, timing: TimingKind) -> Self {
        self.timing = timing;
        self
    }

    /// Replace the intra-cube interconnect fabric (builder style).
    pub fn with_interconnect(mut self, interconnect: InterconnectKind) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Replace the NoC arbitration policy (builder style).
    pub fn with_arbitration(mut self, arbitration: ArbitrationKind) -> Self {
        self.arbitration = arbitration;
        self
    }

    /// Install (or clear) cell-level fault injection (builder style).
    pub fn with_cell_faults(mut self, faults: Option<CellFaultConfig>) -> Self {
        self.cell_faults = faults;
        self
    }

    /// Install (or clear) link-level fault injection (builder style).
    pub fn with_link_faults(mut self, faults: Option<LinkFaultConfig>) -> Self {
        self.link_faults = faults;
        self
    }

    // ------------------------------------------------------------- derived

    /// Quad units on the device: one per link (§III.A).
    pub fn num_quads(&self) -> u8 {
        self.num_links
    }

    /// Capacity of a single bank in bytes.
    pub fn bank_capacity_bytes(&self) -> u64 {
        self.capacity_bytes / (self.num_vaults as u64 * self.banks_per_vault as u64)
    }

    /// Rows (blocks of `block_size` bytes) per bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.bank_capacity_bytes() / self.block_size.bytes() as u64
    }

    /// Address-map geometry implied by this configuration.
    pub fn geometry(&self) -> MapGeometry {
        MapGeometry {
            block_bytes: self.block_size.bytes() as u32,
            vaults: self.num_vaults,
            banks: self.banks_per_vault,
            rows: self.rows_per_bank(),
        }
    }

    /// The specification's default low-interleave address map for this
    /// geometry (§III.B).
    pub fn default_map(&self) -> Result<LowInterleaveMap> {
        LowInterleaveMap::new(self.geometry())
    }

    /// Aggregate bidirectional link bandwidth in GB/s.
    pub fn aggregate_bandwidth_gbs(&self) -> f64 {
        aggregate_bandwidth_gbs(self.num_links, self.lanes_per_link, self.link_speed)
    }

    /// Number of address bits in use: 4-link devices use the lower 32 bits
    /// of the 34-bit field, 8-link devices the lower 33 (§III.B).
    pub fn address_bits_in_use(&self) -> u32 {
        match self.num_links {
            4 => 32,
            8 => 33,
            _ => 34,
        }
    }

    // ----------------------------------------------------------- validation

    /// Validate the whole configuration. Called by the simulator at init.
    pub fn validate(&self) -> Result<()> {
        if self.num_links != 4 && self.num_links != 8 {
            return Err(HmcError::InvalidConfig(format!(
                "num_links must be 4 or 8, got {}",
                self.num_links
            )));
        }
        if self.num_vaults != VAULTS_PER_QUAD * self.num_links as u16 {
            return Err(HmcError::InvalidConfig(format!(
                "num_vaults must be 4 per link ({} for {} links), got {}",
                VAULTS_PER_QUAD * self.num_links as u16,
                self.num_links,
                self.num_vaults
            )));
        }
        if !self.banks_per_vault.is_power_of_two() || self.banks_per_vault < 2 {
            return Err(HmcError::InvalidConfig(format!(
                "banks_per_vault must be a power of two >= 2, got {}",
                self.banks_per_vault
            )));
        }
        if !self.drams_per_bank.is_power_of_two() {
            return Err(HmcError::InvalidConfig(format!(
                "drams_per_bank must be a power of two, got {}",
                self.drams_per_bank
            )));
        }
        if !self.capacity_bytes.is_power_of_two() {
            return Err(HmcError::InvalidConfig(format!(
                "capacity must be a power of two, got {} bytes",
                self.capacity_bytes
            )));
        }
        let denom = self.num_vaults as u64
            * self.banks_per_vault as u64
            * self.block_size.bytes() as u64;
        if !self.capacity_bytes.is_multiple_of(denom) || self.capacity_bytes / denom == 0 {
            return Err(HmcError::InvalidConfig(format!(
                "capacity {} is not divisible into {} vaults x {} banks x {}-byte blocks",
                self.capacity_bytes,
                self.num_vaults,
                self.banks_per_vault,
                self.block_size.bytes()
            )));
        }
        if self.xbar_depth == 0 || self.vault_depth == 0 {
            // §IV.A: "There must exist at least one queue slot for each
            // logical queue representation."
            return Err(HmcError::InvalidConfig(
                "queue depths must be at least one slot".into(),
            ));
        }
        if !self.link_speed.legal_for_links(self.num_links) {
            return Err(HmcError::InvalidConfig(format!(
                "{:?} is not a legal lane rate for {}-link devices",
                self.link_speed, self.num_links
            )));
        }
        let legal_lanes = match self.num_links {
            4 => 16,
            _ => 8,
        };
        if self.lanes_per_link != legal_lanes {
            return Err(HmcError::InvalidConfig(format!(
                "{}-link devices use {} lanes per link, got {}",
                self.num_links, legal_lanes, self.lanes_per_link
            )));
        }
        if let Some(faults) = &self.cell_faults {
            faults.validate()?;
        }
        if let Some(faults) = &self.link_faults {
            faults.validate()?;
        }
        self.geometry().validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_validate() {
        for (label, cfg) in DeviceConfig::paper_configs() {
            cfg.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
        }
        DeviceConfig::small().validate().unwrap();
    }

    #[test]
    fn paper_presets_match_table_one_geometry() {
        let (l1, c1) = &DeviceConfig::paper_configs()[0];
        assert_eq!(*l1, "4-Link; 8-Bank; 2GB");
        assert_eq!(c1.num_links, 4);
        assert_eq!(c1.banks_per_vault, 8);
        assert_eq!(c1.capacity_bytes, 2 * GIB);
        assert_eq!(c1.num_vaults, 16);

        let (_, c4) = &DeviceConfig::paper_configs()[3];
        assert_eq!(c4.num_links, 8);
        assert_eq!(c4.banks_per_vault, 16);
        assert_eq!(c4.capacity_bytes, 8 * GIB);
        assert_eq!(c4.num_vaults, 32);

        // Paper §VI.A: 128 crossbar slots per link, 64 vault slots.
        for (_, c) in DeviceConfig::paper_configs() {
            assert_eq!(c.xbar_depth, 128);
            assert_eq!(c.vault_depth, 64);
        }
    }

    #[test]
    fn quads_track_links() {
        assert_eq!(DeviceConfig::paper_4link_8bank_2gb().num_quads(), 4);
        assert_eq!(DeviceConfig::paper_8link_8bank_4gb().num_quads(), 8);
    }

    #[test]
    fn bank_capacity_accounting() {
        let c = DeviceConfig::paper_4link_8bank_2gb();
        // 2 GiB over 16 vaults x 8 banks = 16 MiB banks.
        assert_eq!(c.bank_capacity_bytes(), 16 << 20);
        assert_eq!(c.rows_per_bank(), (16 << 20) / 128);
        assert_eq!(c.geometry().capacity_bytes(), c.capacity_bytes);
    }

    #[test]
    fn invalid_link_count_rejected() {
        let mut c = DeviceConfig::small();
        c.num_links = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn vault_count_must_be_four_per_link() {
        let mut c = DeviceConfig::small();
        c.num_vaults = 8;
        assert!(c.validate().is_err());
        c.num_vaults = 16;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn queue_depths_require_at_least_one_slot() {
        let mut c = DeviceConfig::small();
        c.xbar_depth = 0;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::small();
        c.vault_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn eight_link_speed_restriction_enforced() {
        let mut c = DeviceConfig::paper_8link_8bank_4gb();
        c.link_speed = LinkSpeed::Gbps15;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lane_width_enforced() {
        let mut c = DeviceConfig::paper_4link_8bank_2gb();
        c.lanes_per_link = 8;
        assert!(c.validate().is_err());
        let mut c = DeviceConfig::paper_8link_8bank_4gb();
        c.lanes_per_link = 16;
        assert!(c.validate().is_err());
    }

    #[test]
    fn non_power_of_two_capacity_rejected() {
        let mut c = DeviceConfig::small();
        c.capacity_bytes = 3 * GIB;
        assert!(c.validate().is_err());
    }

    #[test]
    fn address_bits_follow_link_count() {
        // §III.B: 4-link devices use the lower 32 bits, 8-link the lower 33.
        assert_eq!(
            DeviceConfig::paper_4link_8bank_2gb().address_bits_in_use(),
            32
        );
        assert_eq!(
            DeviceConfig::paper_8link_16bank_8gb().address_bits_in_use(),
            33
        );
    }

    #[test]
    fn default_map_interleaves_vaults_first() {
        use crate::address::{AddressMap, PhysAddr};
        let c = DeviceConfig::small();
        let m = c.default_map().unwrap();
        let block = c.block_size.bytes() as u64;
        let d0 = m.decode(PhysAddr::new(0).unwrap()).unwrap();
        let d1 = m.decode(PhysAddr::new(block).unwrap()).unwrap();
        assert_eq!(d0.vault + 1, d1.vault);
    }

    #[test]
    fn builder_helpers_compose() {
        let c = DeviceConfig::small()
            .with_storage_mode(StorageMode::TimingOnly)
            .with_queue_depths(32, 16)
            .with_block_size(BlockSize::B64);
        assert_eq!(c.storage_mode, StorageMode::TimingOnly);
        assert_eq!(c.xbar_depth, 32);
        assert_eq!(c.vault_depth, 16);
        assert_eq!(c.block_size, BlockSize::B64);
        c.validate().unwrap();
    }

    #[test]
    fn paper_bandwidths_are_plausible() {
        let c4 = DeviceConfig::paper_4link_8bank_2gb();
        assert_eq!(c4.aggregate_bandwidth_gbs(), 160.0);
        let c8 = DeviceConfig::paper_8link_8bank_4gb();
        assert_eq!(c8.aggregate_bandwidth_gbs(), 160.0);
    }

    #[test]
    fn config_serializes_roundtrip() {
        let c = DeviceConfig::paper_8link_16bank_8gb();
        let json = serde_json::to_string(&c).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn timing_field_defaults_for_older_config_files() {
        // Config JSON written before the timing backend existed must
        // still load, defaulting to the paper's classic model.
        let c = DeviceConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json.replace(",\"timing\":\"Classic\"", "");
        assert_ne!(json, stripped, "timing field must serialize");
        let back: DeviceConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.timing, TimingKind::Classic);
        let ddr = c.with_timing(TimingKind::Ddr);
        assert_eq!(ddr.timing, TimingKind::Ddr);
        ddr.validate().unwrap();
    }

    #[test]
    fn cell_fault_field_defaults_for_older_config_files() {
        // Config JSON written before the cell-fault subsystem existed
        // must still load, defaulting to a perfect DRAM array.
        let c = DeviceConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json.replace(",\"cell_faults\":null", "");
        assert_ne!(json, stripped, "cell_faults field must serialize");
        let back: DeviceConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.cell_faults, None);
        let faulty = c.with_cell_faults(Some(CellFaultConfig::default()));
        faulty.validate().unwrap();
        let json = serde_json::to_string(&faulty).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cell_faults, Some(CellFaultConfig::default()));
        let bad = DeviceConfig::small()
            .with_cell_faults(Some(CellFaultConfig::default().with_refresh_window(0)));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn link_fault_field_defaults_for_older_config_files() {
        // Config JSON written before the link-retry subsystem existed
        // must still load, defaulting to perfect links.
        let c = DeviceConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json.replace(",\"link_faults\":null", "");
        assert_ne!(json, stripped, "link_faults field must serialize");
        let back: DeviceConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.link_faults, None);
        let faulty = c.with_link_faults(Some(
            LinkFaultConfig::default().with_error_rate_ppm(10_000),
        ));
        faulty.validate().unwrap();
        let json = serde_json::to_string(&faulty).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.link_faults,
            Some(LinkFaultConfig::default().with_error_rate_ppm(10_000))
        );
        let bad = DeviceConfig::small()
            .with_link_faults(Some(LinkFaultConfig::default().with_retrain_cycles(0)));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn interconnect_fields_default_for_older_config_files() {
        // Config JSON written before the NoC subsystem existed must
        // still load, defaulting to the paper's idealized crossbar.
        let c = DeviceConfig::small();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json
            .replace(",\"interconnect\":\"Crossbar\"", "")
            .replace(",\"arbitration\":\"RoundRobin\"", "");
        assert_ne!(json, stripped, "interconnect fields must serialize");
        let back: DeviceConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.interconnect, InterconnectKind::Crossbar);
        assert_eq!(back.arbitration, ArbitrationKind::RoundRobin);
        let ring = c
            .with_interconnect(InterconnectKind::Ring)
            .with_arbitration(ArbitrationKind::OldestFirst);
        assert_eq!(ring.interconnect, InterconnectKind::Ring);
        assert_eq!(ring.arbitration, ArbitrationKind::OldestFirst);
        ring.validate().unwrap();
    }
}
