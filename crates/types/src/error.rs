//! Error types shared across the HMC-Sim stack.
//!
//! The original C implementation signals failures through negative return
//! codes (`HMC_ERROR`, `HMC_STALL`, …). The Rust port uses a single rich
//! error enum so callers can distinguish a *stall* (back-pressure, retry next
//! cycle — the normal flow-control signal of the paper's §VI.A harness) from
//! genuine misuse (bad configuration, malformed packets, illegal topology).

use std::fmt;

use crate::{CubeId, LinkId, VaultId};

/// Convenience alias used across all hmc-sim crates.
pub type Result<T> = std::result::Result<T, HmcError>;

/// Every failure mode the simulation stack can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HmcError {
    /// A device or simulation configuration was rejected at init time.
    InvalidConfig(String),
    /// Back-pressure: the target queue had no free slot this cycle.
    ///
    /// This is the signal the paper's test harness drives on: the host sends
    /// "as many memory requests as possible … until an appropriate stall is
    /// received indicating that the crossbar arbitration queues are full".
    Stalled {
        /// Cube whose queue was full.
        cube: CubeId,
        /// Link whose crossbar queue was full (host-facing stalls).
        link: LinkId,
    },
    /// A receive was attempted but no response packet was available.
    NoResponse {
        /// Cube polled for a response.
        cube: CubeId,
        /// Link polled for a response.
        link: LinkId,
    },
    /// A packet failed structural validation (length, CRC, field ranges).
    InvalidPacket(String),
    /// An undefined 6-bit command encoding was encountered.
    UnknownCommand(u8),
    /// A physical address fell outside the device's decoded range.
    InvalidAddress {
        /// The offending address value.
        addr: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A register access failed (unknown index, class violation).
    RegisterAccess(String),
    /// A topology was rejected (loopback, unreachable host, bad endpoint).
    Topology(String),
    /// A packet could not be routed to its destination cube.
    Unroutable {
        /// Source cube of the routing attempt.
        from: CubeId,
        /// Destination cube that could not be reached.
        to: CubeId,
    },
    /// An operation referenced a cube, link, or vault that does not exist.
    OutOfRange {
        /// What kind of entity was indexed ("cube", "link", "vault", …).
        what: &'static str,
        /// The index supplied by the caller.
        index: u64,
        /// The number of valid entities.
        limit: u64,
    },
    /// A vault-level structural fault was detected during processing.
    Internal(String),
    /// A wire-protocol frame could not be encoded or decoded.
    Wire(String),
}

impl HmcError {
    /// True when the error is ordinary flow-control back-pressure rather
    /// than a genuine failure; callers should retry after clocking the sim.
    pub fn is_stall(&self) -> bool {
        matches!(self, HmcError::Stalled { .. })
    }

    /// Shorthand constructor for out-of-range vault indices.
    pub fn vault_range(index: VaultId, limit: u16) -> Self {
        HmcError::OutOfRange {
            what: "vault",
            index: index as u64,
            limit: limit as u64,
        }
    }

    /// Shorthand constructor for out-of-range link indices.
    pub fn link_range(index: LinkId, limit: u8) -> Self {
        HmcError::OutOfRange {
            what: "link",
            index: index as u64,
            limit: limit as u64,
        }
    }

    /// Shorthand constructor for out-of-range cube identifiers.
    pub fn cube_range(index: CubeId, limit: u8) -> Self {
        HmcError::OutOfRange {
            what: "cube",
            index: index as u64,
            limit: limit as u64,
        }
    }
}

impl fmt::Display for HmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmcError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HmcError::Stalled { cube, link } => {
                write!(f, "stall: crossbar queue full on cube {cube} link {link}")
            }
            HmcError::NoResponse { cube, link } => {
                write!(f, "no response available on cube {cube} link {link}")
            }
            HmcError::InvalidPacket(msg) => write!(f, "invalid packet: {msg}"),
            HmcError::UnknownCommand(code) => write!(f, "unknown command encoding {code:#04x}"),
            HmcError::InvalidAddress { addr, reason } => {
                write!(f, "invalid address {addr:#x}: {reason}")
            }
            HmcError::RegisterAccess(msg) => write!(f, "register access error: {msg}"),
            HmcError::Topology(msg) => write!(f, "topology error: {msg}"),
            HmcError::Unroutable { from, to } => {
                write!(f, "no route from cube {from} to cube {to}")
            }
            HmcError::OutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            HmcError::Internal(msg) => write!(f, "internal simulator error: {msg}"),
            HmcError::Wire(msg) => write!(f, "wire protocol error: {msg}"),
        }
    }
}

impl std::error::Error for HmcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_is_stall() {
        assert!(HmcError::Stalled { cube: 0, link: 1 }.is_stall());
        assert!(!HmcError::InvalidConfig("x".into()).is_stall());
        assert!(!HmcError::NoResponse { cube: 0, link: 0 }.is_stall());
    }

    #[test]
    fn display_messages_are_informative() {
        let e = HmcError::Stalled { cube: 2, link: 3 };
        let s = e.to_string();
        assert!(s.contains("cube 2"));
        assert!(s.contains("link 3"));

        let e = HmcError::UnknownCommand(0x3f);
        assert!(e.to_string().contains("0x3f"));

        let e = HmcError::OutOfRange {
            what: "vault",
            index: 17,
            limit: 16,
        };
        assert!(e.to_string().contains("vault"));
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn range_constructors() {
        match HmcError::vault_range(20, 16) {
            HmcError::OutOfRange { what, index, limit } => {
                assert_eq!(what, "vault");
                assert_eq!(index, 20);
                assert_eq!(limit, 16);
            }
            other => panic!("unexpected: {other:?}"),
        }
        match HmcError::link_range(9, 8) {
            HmcError::OutOfRange { what, .. } => assert_eq!(what, "link"),
            other => panic!("unexpected: {other:?}"),
        }
        match HmcError::cube_range(9, 8) {
            HmcError::OutOfRange { what, .. } => assert_eq!(what, "cube"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let a = HmcError::InvalidPacket("short".into());
        let b = a.clone();
        assert_eq!(a, b);
    }
}
