//! The HMC 1.0 command set.
//!
//! HMC-Sim "implements all possible device packet variations using all
//! combinations of FLITs" (paper §IV, requirement 5). This module encodes
//! every request, response and flow-control command of the HMC 1.0
//! specification together with its 6-bit wire encoding, FLIT lengths and
//! semantic classification (read / write / posted / atomic / mode / flow).

use crate::error::{HmcError, Result};
use crate::flit::flits_for_data;

/// Data block sizes supported by read and write requests (16–128 bytes).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub enum BlockSize {
    /// 16-byte block (one FLIT of data).
    B16,
    /// 32-byte block.
    B32,
    /// 48-byte block.
    B48,
    /// 64-byte block (the paper's §VI workload size).
    B64,
    /// 80-byte block.
    B80,
    /// 96-byte block.
    B96,
    /// 112-byte block.
    B112,
    /// 128-byte block (maximum: 8 data FLITs).
    B128,
}

impl BlockSize {
    /// All block sizes in ascending order.
    pub const ALL: [BlockSize; 8] = [
        BlockSize::B16,
        BlockSize::B32,
        BlockSize::B48,
        BlockSize::B64,
        BlockSize::B80,
        BlockSize::B96,
        BlockSize::B112,
        BlockSize::B128,
    ];

    /// Size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            BlockSize::B16 => 16,
            BlockSize::B32 => 32,
            BlockSize::B48 => 48,
            BlockSize::B64 => 64,
            BlockSize::B80 => 80,
            BlockSize::B96 => 96,
            BlockSize::B112 => 112,
            BlockSize::B128 => 128,
        }
    }

    /// Number of data FLITs this block occupies on the wire.
    pub fn data_flits(self) -> usize {
        self.bytes() / 16
    }

    /// Zero-based ordinal used in command encodings (B16 = 0 … B128 = 7).
    pub fn ordinal(self) -> u8 {
        match self {
            BlockSize::B16 => 0,
            BlockSize::B32 => 1,
            BlockSize::B48 => 2,
            BlockSize::B64 => 3,
            BlockSize::B80 => 4,
            BlockSize::B96 => 5,
            BlockSize::B112 => 6,
            BlockSize::B128 => 7,
        }
    }

    /// Block size from its encoding ordinal.
    pub fn from_ordinal(ord: u8) -> Result<Self> {
        Ok(match ord {
            0 => BlockSize::B16,
            1 => BlockSize::B32,
            2 => BlockSize::B48,
            3 => BlockSize::B64,
            4 => BlockSize::B80,
            5 => BlockSize::B96,
            6 => BlockSize::B112,
            7 => BlockSize::B128,
            other => {
                return Err(HmcError::InvalidPacket(format!(
                    "block-size ordinal {other} out of range 0..=7"
                )))
            }
        })
    }

    /// Block size from a byte count (must be a multiple of 16 in 16..=128).
    pub fn from_bytes(bytes: usize) -> Result<Self> {
        if bytes == 0 || !bytes.is_multiple_of(16) || bytes > 128 {
            return Err(HmcError::InvalidPacket(format!(
                "{bytes} bytes is not a legal HMC block size (16..=128, multiple of 16)"
            )));
        }
        BlockSize::from_ordinal((bytes / 16 - 1) as u8)
    }
}

/// A decoded HMC command: flow control, request, or response.
///
/// Wire encodings (6-bit `CMD` field) follow HMC 1.0:
///
/// | command | code | command | code |
/// |---------|------|---------|------|
/// | NULL    | 0x00 | P_WR16–P_WR128 | 0x18–0x1F |
/// | PRET    | 0x01 | P_BWR   | 0x21 |
/// | TRET    | 0x02 | P_2ADD8 | 0x22 |
/// | IRTRY   | 0x03 | P_ADD16 | 0x23 |
/// | WR16–WR128 | 0x08–0x0F | MD_RD | 0x28 |
/// | MD_WR   | 0x10 | RD16–RD128 | 0x30–0x37 |
/// | BWR     | 0x11 | RD_RS   | 0x38 |
/// | 2ADD8   | 0x12 | WR_RS   | 0x39 |
/// | ADD16   | 0x13 | MD_RD_RS| 0x3A |
/// |         |      | MD_WR_RS| 0x3B |
/// |         |      | ERROR   | 0x3E |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    // ---- flow control ----
    /// Null packet: ignored by the receiver, drained from queues.
    Null,
    /// Packet return: retires link retry-pointer state.
    Pret,
    /// Token return: returns crossbar input-buffer tokens to the sender.
    Tret,
    /// Init/error retry marker.
    Irtry,

    // ---- requests ----
    /// Memory write request of the given block size (2–9 FLITs).
    Wr(BlockSize),
    /// Posted (no-response) memory write request.
    PostedWr(BlockSize),
    /// Mode register write (in-band register access, §V.D).
    ModeWrite,
    /// Bit write: 8-byte masked write (16-byte payload: mask + data).
    Bwr,
    /// Posted bit write.
    PostedBwr,
    /// Dual 8-byte add-immediate atomic (read-modify-write).
    TwoAdd8,
    /// Single 16-byte add-immediate atomic.
    Add16,
    /// Posted dual 8-byte add-immediate atomic.
    PostedTwoAdd8,
    /// Posted single 16-byte add-immediate atomic.
    PostedAdd16,
    /// Memory read request of the given block size (always 1 FLIT).
    Rd(BlockSize),
    /// Mode register read (in-band register access, §V.D).
    ModeRead,

    // ---- responses ----
    /// Read response carrying the requested data block.
    RdResponse,
    /// Write / atomic completion response.
    WrResponse,
    /// Mode register read response (one FLIT of register data).
    ModeReadResponse,
    /// Mode register write response.
    ModeWriteResponse,
    /// Error response (failed read/write, misroute, illegal request).
    ErrorResponse,
}

impl Command {
    /// Encode to the 6-bit wire `CMD` value.
    pub fn encode(self) -> u8 {
        match self {
            Command::Null => 0x00,
            Command::Pret => 0x01,
            Command::Tret => 0x02,
            Command::Irtry => 0x03,
            Command::Wr(bs) => 0x08 + bs.ordinal(),
            Command::ModeWrite => 0x10,
            Command::Bwr => 0x11,
            Command::TwoAdd8 => 0x12,
            Command::Add16 => 0x13,
            Command::PostedWr(bs) => 0x18 + bs.ordinal(),
            Command::PostedBwr => 0x21,
            Command::PostedTwoAdd8 => 0x22,
            Command::PostedAdd16 => 0x23,
            Command::ModeRead => 0x28,
            Command::Rd(bs) => 0x30 + bs.ordinal(),
            Command::RdResponse => 0x38,
            Command::WrResponse => 0x39,
            Command::ModeReadResponse => 0x3a,
            Command::ModeWriteResponse => 0x3b,
            Command::ErrorResponse => 0x3e,
        }
    }

    /// Decode a 6-bit wire `CMD` value.
    pub fn decode(code: u8) -> Result<Self> {
        Ok(match code {
            0x00 => Command::Null,
            0x01 => Command::Pret,
            0x02 => Command::Tret,
            0x03 => Command::Irtry,
            0x08..=0x0f => Command::Wr(BlockSize::from_ordinal(code - 0x08)?),
            0x10 => Command::ModeWrite,
            0x11 => Command::Bwr,
            0x12 => Command::TwoAdd8,
            0x13 => Command::Add16,
            0x18..=0x1f => Command::PostedWr(BlockSize::from_ordinal(code - 0x18)?),
            0x21 => Command::PostedBwr,
            0x22 => Command::PostedTwoAdd8,
            0x23 => Command::PostedAdd16,
            0x28 => Command::ModeRead,
            0x30..=0x37 => Command::Rd(BlockSize::from_ordinal(code - 0x30)?),
            0x38 => Command::RdResponse,
            0x39 => Command::WrResponse,
            0x3a => Command::ModeReadResponse,
            0x3b => Command::ModeWriteResponse,
            0x3e => Command::ErrorResponse,
            other => return Err(HmcError::UnknownCommand(other)),
        })
    }

    /// All commands, one per variant (block-sized commands at every size).
    pub fn all() -> Vec<Command> {
        let mut v = vec![
            Command::Null,
            Command::Pret,
            Command::Tret,
            Command::Irtry,
            Command::ModeWrite,
            Command::Bwr,
            Command::TwoAdd8,
            Command::Add16,
            Command::PostedBwr,
            Command::PostedTwoAdd8,
            Command::PostedAdd16,
            Command::ModeRead,
            Command::RdResponse,
            Command::WrResponse,
            Command::ModeReadResponse,
            Command::ModeWriteResponse,
            Command::ErrorResponse,
        ];
        for bs in BlockSize::ALL {
            v.push(Command::Wr(bs));
            v.push(Command::PostedWr(bs));
            v.push(Command::Rd(bs));
        }
        v
    }

    /// True for flow-control packets (NULL / PRET / TRET / IRTRY).
    pub fn is_flow(self) -> bool {
        matches!(
            self,
            Command::Null | Command::Pret | Command::Tret | Command::Irtry
        )
    }

    /// True for request packets (anything a host sends toward memory).
    pub fn is_request(self) -> bool {
        !self.is_flow() && !self.is_response()
    }

    /// True for response packets (memory → host).
    pub fn is_response(self) -> bool {
        matches!(
            self,
            Command::RdResponse
                | Command::WrResponse
                | Command::ModeReadResponse
                | Command::ModeWriteResponse
                | Command::ErrorResponse
        )
    }

    /// True for posted requests: the device sends no response packet.
    pub fn is_posted(self) -> bool {
        matches!(
            self,
            Command::PostedWr(_)
                | Command::PostedBwr
                | Command::PostedTwoAdd8
                | Command::PostedAdd16
        )
    }

    /// True for requests that read memory data (plain reads only).
    pub fn is_read(self) -> bool {
        matches!(self, Command::Rd(_))
    }

    /// True for requests that write memory data (plain + posted writes).
    pub fn is_write(self) -> bool {
        matches!(self, Command::Wr(_) | Command::PostedWr(_))
    }

    /// True for read-modify-write atomics (2ADD8 / ADD16 / BWR families).
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            Command::TwoAdd8
                | Command::Add16
                | Command::PostedTwoAdd8
                | Command::PostedAdd16
                | Command::Bwr
                | Command::PostedBwr
        )
    }

    /// True for in-band register access (MODE_READ / MODE_WRITE).
    pub fn is_mode(self) -> bool {
        matches!(self, Command::ModeRead | Command::ModeWrite)
    }

    /// Request payload size in bytes (data FLITs carried toward memory).
    ///
    /// Reads and MODE_READ carry none; writes carry their block; atomics
    /// carry one 16-byte FLIT of operand data; MODE_WRITE carries one FLIT.
    pub fn request_data_bytes(self) -> usize {
        match self {
            Command::Wr(bs) | Command::PostedWr(bs) => bs.bytes(),
            Command::Bwr
            | Command::PostedBwr
            | Command::TwoAdd8
            | Command::Add16
            | Command::PostedTwoAdd8
            | Command::PostedAdd16
            | Command::ModeWrite => 16,
            _ => 0,
        }
    }

    /// Total request packet length in FLITs.
    pub fn request_flits(self) -> usize {
        flits_for_data(self.request_data_bytes())
    }

    /// The response command a device generates on success, if any.
    pub fn response_command(self) -> Option<Command> {
        match self {
            Command::Rd(_) => Some(Command::RdResponse),
            Command::Wr(_) | Command::Bwr | Command::TwoAdd8 | Command::Add16 => {
                Some(Command::WrResponse)
            }
            Command::ModeRead => Some(Command::ModeReadResponse),
            Command::ModeWrite => Some(Command::ModeWriteResponse),
            _ => None,
        }
    }

    /// Response payload size in bytes for a request of this command.
    pub fn response_data_bytes(self) -> usize {
        match self {
            Command::Rd(bs) => bs.bytes(),
            Command::ModeRead => 16,
            _ => 0,
        }
    }

    /// Total response packet length in FLITs (0 if no response is sent).
    pub fn response_flits(self) -> usize {
        if self.response_command().is_none() {
            return 0;
        }
        flits_for_data(self.response_data_bytes())
    }

    /// Short mnemonic matching the specification's naming (e.g. `RD64`).
    pub fn mnemonic(self) -> String {
        match self {
            Command::Null => "NULL".into(),
            Command::Pret => "PRET".into(),
            Command::Tret => "TRET".into(),
            Command::Irtry => "IRTRY".into(),
            Command::Wr(bs) => format!("WR{}", bs.bytes()),
            Command::PostedWr(bs) => format!("P_WR{}", bs.bytes()),
            Command::ModeWrite => "MD_WR".into(),
            Command::Bwr => "BWR".into(),
            Command::PostedBwr => "P_BWR".into(),
            Command::TwoAdd8 => "2ADD8".into(),
            Command::Add16 => "ADD16".into(),
            Command::PostedTwoAdd8 => "P_2ADD8".into(),
            Command::PostedAdd16 => "P_ADD16".into(),
            Command::Rd(bs) => format!("RD{}", bs.bytes()),
            Command::ModeRead => "MD_RD".into(),
            Command::RdResponse => "RD_RS".into(),
            Command::WrResponse => "WR_RS".into(),
            Command::ModeReadResponse => "MD_RD_RS".into(),
            Command::ModeWriteResponse => "MD_WR_RS".into(),
            Command::ErrorResponse => "ERROR".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_bytes_and_flits() {
        assert_eq!(BlockSize::B16.bytes(), 16);
        assert_eq!(BlockSize::B128.bytes(), 128);
        assert_eq!(BlockSize::B64.data_flits(), 4);
        assert_eq!(BlockSize::B128.data_flits(), 8);
    }

    #[test]
    fn block_size_ordinal_roundtrip() {
        for bs in BlockSize::ALL {
            assert_eq!(BlockSize::from_ordinal(bs.ordinal()).unwrap(), bs);
            assert_eq!(BlockSize::from_bytes(bs.bytes()).unwrap(), bs);
        }
        assert!(BlockSize::from_ordinal(8).is_err());
        assert!(BlockSize::from_bytes(0).is_err());
        assert!(BlockSize::from_bytes(20).is_err());
        assert!(BlockSize::from_bytes(144).is_err());
    }

    #[test]
    fn every_command_roundtrips_through_wire_encoding() {
        for cmd in Command::all() {
            let code = cmd.encode();
            assert!(code < 64, "{cmd:?} encoding must fit 6 bits");
            assert_eq!(Command::decode(code).unwrap(), cmd, "roundtrip {cmd:?}");
        }
    }

    #[test]
    fn spec_encodings_are_exact() {
        assert_eq!(Command::Null.encode(), 0x00);
        assert_eq!(Command::Tret.encode(), 0x02);
        assert_eq!(Command::Wr(BlockSize::B16).encode(), 0x08);
        assert_eq!(Command::Wr(BlockSize::B128).encode(), 0x0f);
        assert_eq!(Command::ModeWrite.encode(), 0x10);
        assert_eq!(Command::PostedWr(BlockSize::B64).encode(), 0x1b);
        assert_eq!(Command::ModeRead.encode(), 0x28);
        assert_eq!(Command::Rd(BlockSize::B64).encode(), 0x33);
        assert_eq!(Command::RdResponse.encode(), 0x38);
        assert_eq!(Command::ErrorResponse.encode(), 0x3e);
    }

    #[test]
    fn undefined_encodings_are_rejected() {
        for code in [0x04u8, 0x05, 0x14, 0x20, 0x24, 0x29, 0x3c, 0x3f] {
            assert!(
                matches!(Command::decode(code), Err(HmcError::UnknownCommand(c)) if c == code),
                "code {code:#x} should be unknown"
            );
        }
    }

    #[test]
    fn classification_is_a_partition() {
        for cmd in Command::all() {
            let classes =
                [cmd.is_flow(), cmd.is_request(), cmd.is_response()];
            assert_eq!(
                classes.iter().filter(|&&b| b).count(),
                1,
                "{cmd:?} must be exactly one of flow/request/response"
            );
        }
    }

    #[test]
    fn read_requests_are_single_flit() {
        // §III.C: read requests for all payload sizes are one FLIT.
        for bs in BlockSize::ALL {
            assert_eq!(Command::Rd(bs).request_flits(), 1);
        }
    }

    #[test]
    fn write_requests_span_two_to_nine_flits() {
        // §III.C: write and atomic requests are 2–9 FLITs.
        assert_eq!(Command::Wr(BlockSize::B16).request_flits(), 2);
        assert_eq!(Command::Wr(BlockSize::B64).request_flits(), 5);
        assert_eq!(Command::Wr(BlockSize::B128).request_flits(), 9);
        assert_eq!(Command::TwoAdd8.request_flits(), 2);
        assert_eq!(Command::Add16.request_flits(), 2);
        assert_eq!(Command::Bwr.request_flits(), 2);
    }

    #[test]
    fn posted_requests_elicit_no_response() {
        for bs in BlockSize::ALL {
            assert_eq!(Command::PostedWr(bs).response_command(), None);
            assert_eq!(Command::PostedWr(bs).response_flits(), 0);
        }
        assert_eq!(Command::PostedAdd16.response_command(), None);
        assert_eq!(Command::PostedBwr.response_command(), None);
        assert_eq!(Command::PostedTwoAdd8.response_command(), None);
    }

    #[test]
    fn responses_carry_expected_payload() {
        assert_eq!(
            Command::Rd(BlockSize::B64).response_command(),
            Some(Command::RdResponse)
        );
        assert_eq!(Command::Rd(BlockSize::B64).response_flits(), 5);
        assert_eq!(Command::Wr(BlockSize::B64).response_flits(), 1);
        assert_eq!(Command::ModeRead.response_flits(), 2);
        assert_eq!(Command::ModeWrite.response_flits(), 1);
    }

    #[test]
    fn atomics_are_requests_with_write_responses() {
        for cmd in [Command::TwoAdd8, Command::Add16, Command::Bwr] {
            assert!(cmd.is_atomic());
            assert!(cmd.is_request());
            assert_eq!(cmd.response_command(), Some(Command::WrResponse));
        }
    }

    #[test]
    fn mnemonics_match_spec_names() {
        assert_eq!(Command::Rd(BlockSize::B64).mnemonic(), "RD64");
        assert_eq!(Command::PostedWr(BlockSize::B32).mnemonic(), "P_WR32");
        assert_eq!(Command::TwoAdd8.mnemonic(), "2ADD8");
        assert_eq!(Command::ModeReadResponse.mnemonic(), "MD_RD_RS");
    }

    #[test]
    fn posted_classification() {
        assert!(Command::PostedWr(BlockSize::B16).is_posted());
        assert!(!Command::Wr(BlockSize::B16).is_posted());
        assert!(Command::PostedBwr.is_posted());
        assert!(!Command::Bwr.is_posted());
    }
}
