//! Physical units: SERDES link rates and capacity helpers.

use serde::{Deserialize, Serialize};

/// SERDES bit rates defined by the HMC 1.0 specification (paper §III.A):
/// four-link devices operate at 10, 12.5 or 15 Gbps per lane; eight-link
/// devices operate at 10 Gbps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkSpeed {
    /// 10 Gbps per lane (legal on 4- and 8-link devices).
    Gbps10,
    /// 12.5 Gbps per lane (4-link devices only).
    Gbps12_5,
    /// 15 Gbps per lane (4-link devices only).
    Gbps15,
}

impl LinkSpeed {
    /// Lane rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        match self {
            LinkSpeed::Gbps10 => 10.0,
            LinkSpeed::Gbps12_5 => 12.5,
            LinkSpeed::Gbps15 => 15.0,
        }
    }

    /// True if this rate is legal for a device with `num_links` links.
    pub fn legal_for_links(self, num_links: u8) -> bool {
        match num_links {
            4 => true,
            8 => self == LinkSpeed::Gbps10,
            _ => false,
        }
    }
}

/// Bytes in a gibibyte.
pub const GIB: u64 = 1 << 30;

/// Bytes in a mebibyte.
pub const MIB: u64 = 1 << 20;

/// Aggregate bidirectional link bandwidth in GB/s for a device.
///
/// Each link is a group of `lanes` bidirectional SERDES lanes at `speed`;
/// bandwidth counts both directions (the specification's headline 320 GB/s
/// comes from 8 links × 16 lanes × 10 Gbps × 2 directions / 8 bits).
pub fn aggregate_bandwidth_gbs(num_links: u8, lanes_per_link: u8, speed: LinkSpeed) -> f64 {
    num_links as f64 * lanes_per_link as f64 * speed.gbps() * 2.0 / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_rates() {
        assert_eq!(LinkSpeed::Gbps10.gbps(), 10.0);
        assert_eq!(LinkSpeed::Gbps12_5.gbps(), 12.5);
        assert_eq!(LinkSpeed::Gbps15.gbps(), 15.0);
    }

    #[test]
    fn eight_link_devices_only_run_at_10gbps() {
        // §III.A: "Eight link devices have the ability to operate at 10Gbps."
        assert!(LinkSpeed::Gbps10.legal_for_links(8));
        assert!(!LinkSpeed::Gbps12_5.legal_for_links(8));
        assert!(!LinkSpeed::Gbps15.legal_for_links(8));
        for s in [LinkSpeed::Gbps10, LinkSpeed::Gbps12_5, LinkSpeed::Gbps15] {
            assert!(s.legal_for_links(4));
            assert!(!s.legal_for_links(6));
        }
    }

    #[test]
    fn headline_bandwidth_is_320_gbs() {
        // The spec's marquee number: 8 links × 16 lanes × 10 Gbps bidir.
        assert_eq!(aggregate_bandwidth_gbs(8, 16, LinkSpeed::Gbps10), 320.0);
        // A full-width 4-link device at 15 Gbps reaches 240 GB/s.
        assert_eq!(aggregate_bandwidth_gbs(4, 16, LinkSpeed::Gbps15), 240.0);
    }

    #[test]
    fn capacity_constants() {
        assert_eq!(GIB, 1_073_741_824);
        assert_eq!(MIB * 1024, GIB);
    }
}
