//! # hmc-types
//!
//! Protocol-level primitives for the HMC-Sim simulation stack: the HMC 1.0
//! packet format (FLITs, commands, 64-bit header/tail words), CRC-32/Koopman
//! checksums, the 34-bit physical address space with configurable interleave
//! maps, and the device configuration model (links, vaults, banks, queue
//! depths, SERDES rates).
//!
//! Everything in this crate is pure data + arithmetic: no simulation state,
//! no I/O. The simulator core (`hmc-core`) and every other crate in the
//! workspace builds on these definitions.
//!
//! The bit layouts used here follow the field inventory of the Hybrid Memory
//! Cube Specification 1.0 (CUB/ADRS/TAG/LNG/DLN/CMD in the header;
//! CRC/RTC/SLID/SEQ/FRP/RRP in the tail) with a documented packing; see
//! [`packet`] for the exact placement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod cellfault;
pub mod command;
pub mod config;
pub mod crc;
pub mod error;
pub mod flit;
pub mod interconnect;
pub mod linkfault;
pub mod packet;
pub mod timing;
pub mod units;
pub mod wire;

pub use address::{
    AddressMap, BankFirstMap, CustomMap, DecodedAddr, Field, LinearMap, LowInterleaveMap,
    MapGeometry, PhysAddr,
};
pub use cellfault::{CellFaultConfig, Mitigation};
pub use command::{BlockSize, Command};
pub use config::{DeviceConfig, StorageMode};
pub use error::{HmcError, Result};
pub use flit::{FLIT_BYTES, MAX_DATA_BYTES, MAX_PACKET_BYTES, MAX_PACKET_FLITS};
pub use interconnect::{ArbitrationKind, InterconnectKind};
pub use linkfault::LinkFaultConfig;
pub use packet::{Packet, ResponseStatus};
pub use timing::{DdrTimings, PagePolicy, TimingKind};
pub use units::LinkSpeed;
pub use wire::{
    BusyReason, Frame, WireErrorCode, WireOp, WireResponse, WireStats, MAX_FRAME_LEN, WIRE_VERSION,
};

/// Identifier of a cube (device) within a simulation object.
///
/// Per HMC-Sim semantics, host processors are identified by cube IDs strictly
/// greater than the number of devices (`num_devices + 1 + k` for host `k`),
/// so hosts and memory devices share one ID space and can exchange packets
/// seamlessly (paper §V.B).
pub type CubeId = u8;

/// Index of a link on a device (0..num_links).
pub type LinkId = u8;

/// Index of a vault within a device (0..num_vaults).
pub type VaultId = u16;

/// Index of a bank within a vault (0..banks_per_vault).
pub type BankId = u16;

/// Index of a quad unit within a device (0..num_links; one quad per link).
pub type QuadId = u8;

/// A simulation clock value (64-bit, paper §IV.C.6).
pub type Cycle = u64;
