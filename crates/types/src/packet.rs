//! HMC packet representation: 64-bit header, 0–8 data FLITs, 64-bit tail.
//!
//! All in-band communication between hosts and HMC devices is packetized
//! (paper §III.C). A packet is a multiple of a 16-byte FLIT; the header and
//! tail words together occupy one FLIT, and payloads occupy up to eight
//! more. Every packet reserves storage for the largest possible nine-FLIT
//! packet, exactly as the paper describes for HMC-Sim queue slots ("each
//! packet is configured to contain sufficient storage for the largest
//! possible packet with nine FLITs", §IV.A).
//!
//! # Field packing
//!
//! Header word (bit 0 = LSB):
//!
//! | bits   | field | width | meaning |
//! |--------|-------|-------|---------|
//! | 5:0    | CMD   | 6     | command encoding ([`Command`]) |
//! | 6      | —     | 1     | reserved |
//! | 10:7   | LNG   | 4     | packet length in FLITs |
//! | 14:11  | DLN   | 4     | duplicate length (must equal LNG) |
//! | 23:15  | TAG   | 9     | request/response correlation tag |
//! | 57:24  | ADRS  | 34    | physical address |
//! | 60:58  | —     | 3     | reserved |
//! | 63:61  | CUB   | 3     | destination cube ID |
//!
//! Request tail word:
//!
//! | bits   | field | width | meaning |
//! |--------|-------|-------|---------|
//! | 31:0   | CRC   | 32    | CRC-32/Koopman over header+data+tail(CRC=0) |
//! | 36:32  | RTC   | 5     | return token count |
//! | 39:37  | SLID  | 3     | source link ID |
//! | 42:40  | SEQ   | 3     | sequence number |
//! | 51:43  | FRP   | 9     | forward retry pointer |
//! | 60:52  | RRP   | 9     | return retry pointer |
//! | 63:61  | —     | 3     | reserved |
//!
//! Response tail word replaces FRP/RRP real estate with error status:
//!
//! | bits   | field   | width | meaning |
//! |--------|---------|-------|---------|
//! | 31:0   | CRC     | 32    | as above |
//! | 36:32  | RTC     | 5     | return token count |
//! | 43:37  | ERRSTAT | 7     | error status ([`ResponseStatus`]) |
//! | 44     | DINV    | 1     | data-invalid flag |
//! | 47:45  | SLID    | 3     | source link ID (echoed) |
//! | 50:48  | SEQ     | 3     | sequence number |
//! | 59:51  | FRP     | 9     | forward retry pointer |
//! | 63:60  | —       | 4     | reserved |

use crate::command::Command;
use crate::crc::Crc32k;
use crate::error::{HmcError, Result};
use crate::flit::{FLIT_BYTES, MAX_DATA_BYTES, MAX_DATA_WORDS};
use crate::{CubeId, LinkId};

/// Mask helpers: `field!(word, lo, width)` extracts, `set_field!` deposits.
macro_rules! field {
    ($word:expr, $lo:expr, $width:expr) => {
        (($word >> $lo) & ((1u64 << $width) - 1))
    };
}
macro_rules! set_field {
    ($word:expr, $lo:expr, $width:expr, $val:expr) => {{
        let mask = ((1u64 << $width) - 1) << $lo;
        $word = ($word & !mask) | ((($val as u64) << $lo) & mask);
    }};
}

/// The 7-bit `ERRSTAT` error status carried in response packet tails.
///
/// HMC-Sim generates "response packet generation following a failed read or
/// write operation \[error response packets\]" (paper §IV.C); these codes
/// identify why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResponseStatus {
    /// Operation completed successfully.
    Ok,
    /// The request command was undefined or unsupported by the device.
    CommandError,
    /// The decoded physical address fell outside the device capacity.
    AddressError,
    /// The packet could not be routed to its destination cube
    /// (deliberately misconfigured topologies, §IV requirement 2).
    Misroute,
    /// The packet exceeded its hop budget and was declared a zombie
    /// (loopback-adjacent misconfiguration, §V.B).
    Zombie,
    /// The request exhausted the link-retry protocol's attempt cap:
    /// every transmission was CRC-corrupt, the link went down for
    /// retraining, and this poisoned response was synthesized so the
    /// host sees a typed failure instead of a silent drop.
    LinkPoisoned,
    /// An internal vault/bank fault occurred during processing.
    InternalError,
}

impl ResponseStatus {
    /// Wire encoding (7-bit field).
    pub fn encode(self) -> u8 {
        match self {
            ResponseStatus::Ok => 0x00,
            ResponseStatus::CommandError => 0x01,
            ResponseStatus::AddressError => 0x02,
            ResponseStatus::Misroute => 0x03,
            ResponseStatus::Zombie => 0x04,
            ResponseStatus::LinkPoisoned => 0x05,
            ResponseStatus::InternalError => 0x7f,
        }
    }

    /// Decode the 7-bit wire value.
    pub fn decode(code: u8) -> Result<Self> {
        Ok(match code & 0x7f {
            0x00 => ResponseStatus::Ok,
            0x01 => ResponseStatus::CommandError,
            0x02 => ResponseStatus::AddressError,
            0x03 => ResponseStatus::Misroute,
            0x04 => ResponseStatus::Zombie,
            0x05 => ResponseStatus::LinkPoisoned,
            0x7f => ResponseStatus::InternalError,
            other => {
                return Err(HmcError::InvalidPacket(format!(
                    "unknown ERRSTAT encoding {other:#04x}"
                )))
            }
        })
    }

    /// True when the status signals success.
    pub fn is_ok(self) -> bool {
        self == ResponseStatus::Ok
    }
}

/// A fully-formed HMC packet: header word, payload storage, tail word.
///
/// The payload array always reserves the maximum eight data FLITs
/// (16 × u64); `lng` determines how many words are live on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The 64-bit header word.
    pub header: u64,
    /// Payload storage for up to eight data FLITs (128 bytes).
    pub data: [u64; MAX_DATA_WORDS],
    /// The 64-bit tail word.
    pub tail: u64,
}

impl std::fmt::Display for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

impl Default for Packet {
    fn default() -> Self {
        Packet {
            header: 0,
            data: [0; MAX_DATA_WORDS],
            tail: 0,
        }
    }
}

impl Packet {
    // ---------------------------------------------------------------- header

    /// Raw 6-bit command field.
    pub fn raw_cmd(&self) -> u8 {
        field!(self.header, 0, 6) as u8
    }

    /// Decoded command.
    pub fn cmd(&self) -> Result<Command> {
        Command::decode(self.raw_cmd())
    }

    /// Set the command field.
    pub fn set_cmd(&mut self, cmd: Command) {
        set_field!(self.header, 0, 6, cmd.encode());
    }

    /// Packet length in FLITs (LNG field).
    pub fn lng(&self) -> usize {
        field!(self.header, 7, 4) as usize
    }

    /// Set the LNG field.
    pub fn set_lng(&mut self, flits: usize) {
        set_field!(self.header, 7, 4, flits as u64);
    }

    /// Duplicate length field (DLN; must equal LNG on valid packets).
    pub fn dln(&self) -> usize {
        field!(self.header, 11, 4) as usize
    }

    /// Set the DLN field.
    pub fn set_dln(&mut self, flits: usize) {
        set_field!(self.header, 11, 4, flits as u64);
    }

    /// 9-bit request/response correlation tag.
    pub fn tag(&self) -> u16 {
        field!(self.header, 15, 9) as u16
    }

    /// Set the tag field.
    pub fn set_tag(&mut self, tag: u16) {
        set_field!(self.header, 15, 9, tag);
    }

    /// 34-bit physical address.
    pub fn addr(&self) -> u64 {
        field!(self.header, 24, 34)
    }

    /// Set the physical address field.
    pub fn set_addr(&mut self, addr: u64) {
        set_field!(self.header, 24, 34, addr);
    }

    /// 3-bit destination cube ID.
    pub fn cub(&self) -> CubeId {
        field!(self.header, 61, 3) as CubeId
    }

    /// Set the destination cube ID.
    pub fn set_cub(&mut self, cub: CubeId) {
        set_field!(self.header, 61, 3, cub);
    }

    // ------------------------------------------------------------------ tail

    /// 5-bit return token count.
    pub fn rtc(&self) -> u8 {
        field!(self.tail, 32, 5) as u8
    }

    /// Set the return token count.
    pub fn set_rtc(&mut self, rtc: u8) {
        set_field!(self.tail, 32, 5, rtc);
    }

    /// Source link ID of a request packet.
    pub fn slid(&self) -> LinkId {
        field!(self.tail, 37, 3) as LinkId
    }

    /// Set the source link ID of a request packet.
    pub fn set_slid(&mut self, slid: LinkId) {
        set_field!(self.tail, 37, 3, slid);
    }

    /// 3-bit sequence number of a request packet.
    pub fn seq(&self) -> u8 {
        field!(self.tail, 40, 3) as u8
    }

    /// Set the sequence number of a request packet.
    pub fn set_seq(&mut self, seq: u8) {
        set_field!(self.tail, 40, 3, seq);
    }

    /// 9-bit forward retry pointer of a request packet.
    pub fn frp(&self) -> u16 {
        field!(self.tail, 43, 9) as u16
    }

    /// Set the forward retry pointer of a request packet.
    pub fn set_frp(&mut self, frp: u16) {
        set_field!(self.tail, 43, 9, frp);
    }

    /// 9-bit return retry pointer of a request packet.
    pub fn rrp(&self) -> u16 {
        field!(self.tail, 52, 9) as u16
    }

    /// Set the return retry pointer of a request packet.
    pub fn set_rrp(&mut self, rrp: u16) {
        set_field!(self.tail, 52, 9, rrp);
    }

    /// CRC field (low 32 bits of the tail, both packet classes).
    pub fn crc(&self) -> u32 {
        field!(self.tail, 0, 32) as u32
    }

    /// Set the CRC field.
    pub fn set_crc(&mut self, crc: u32) {
        set_field!(self.tail, 0, 32, crc);
    }

    // ------------------------------------------------- response-tail variant

    /// 7-bit ERRSTAT of a response packet.
    pub fn errstat(&self) -> Result<ResponseStatus> {
        ResponseStatus::decode(field!(self.tail, 37, 7) as u8)
    }

    /// Set the ERRSTAT of a response packet.
    pub fn set_errstat(&mut self, status: ResponseStatus) {
        set_field!(self.tail, 37, 7, status.encode());
    }

    /// Data-invalid flag of a response packet.
    pub fn dinv(&self) -> bool {
        field!(self.tail, 44, 1) != 0
    }

    /// Set the data-invalid flag of a response packet.
    pub fn set_dinv(&mut self, dinv: bool) {
        set_field!(self.tail, 44, 1, dinv as u64);
    }

    /// Source link ID echoed in a response packet tail.
    pub fn response_slid(&self) -> LinkId {
        field!(self.tail, 45, 3) as LinkId
    }

    /// Set the source link ID echoed in a response packet tail.
    pub fn set_response_slid(&mut self, slid: LinkId) {
        set_field!(self.tail, 45, 3, slid);
    }

    // ------------------------------------------------------------- payload

    /// Live payload size in bytes as implied by the LNG field, clamped
    /// to the eight-FLIT payload storage: the 4-bit LNG field of a
    /// corrupted packet can claim up to 15 FLITs, and accessors (CRC
    /// verification in particular) must not read past the packet for
    /// it. [`Packet::validate`] rejects such lengths outright.
    pub fn data_bytes(&self) -> usize {
        (self.lng().saturating_sub(1) * FLIT_BYTES).min(MAX_DATA_BYTES)
    }

    /// Live payload as a word slice.
    pub fn data_words(&self) -> &[u64] {
        &self.data[..self.data_bytes() / 8]
    }

    /// Copy a byte payload into the packet's data words (little-endian).
    ///
    /// # Panics
    /// Panics if `bytes.len()` exceeds the 128-byte maximum.
    pub fn set_data_bytes(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= MAX_DATA_WORDS * 8, "payload too large");
        self.data = [0; MAX_DATA_WORDS];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.data[i] = u64::from_le_bytes(word);
        }
    }

    /// Extract the live payload as bytes (little-endian word order).
    pub fn data_as_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.data_bytes()];
        self.copy_data_to(&mut out);
        out
    }

    /// Copy the live payload into `out` without allocating, returning the
    /// number of bytes written (`data_bytes()`).
    ///
    /// # Panics
    /// Panics if `out` is shorter than the live payload.
    pub fn copy_data_to(&self, out: &mut [u8]) -> usize {
        let n = self.data_bytes();
        for (chunk, w) in out[..n].chunks_mut(8).zip(self.data_words()) {
            chunk.copy_from_slice(&w.to_le_bytes()[..chunk.len()]);
        }
        n
    }

    // ---------------------------------------------------------- construction

    /// Build a fully-formed request packet (paper §V.C requires the
    /// application to submit "a preformatted, fully formed, compliant
    /// packet"; this is the `hmcsim_build_memrequest` equivalent).
    ///
    /// `data` must match the command's payload size exactly: empty for
    /// reads / MODE_READ, the block size for writes, one FLIT for atomics
    /// and MODE_WRITE.
    ///
    /// # Examples
    ///
    /// ```
    /// use hmc_types::{BlockSize, Command, Packet};
    ///
    /// let rd = Packet::request(Command::Rd(BlockSize::B64), 0, 0x1000, 5, 2, &[]).unwrap();
    /// assert_eq!(rd.lng(), 1, "reads are single-FLIT");
    /// assert!(rd.verify_crc());
    ///
    /// let wr = Packet::request(Command::Wr(BlockSize::B32), 0, 0x1000, 6, 2, &[0xab; 32]).unwrap();
    /// assert_eq!(wr.lng(), 3, "header/tail FLIT + two data FLITs");
    /// ```
    pub fn request(
        cmd: Command,
        cub: CubeId,
        addr: u64,
        tag: u16,
        link: LinkId,
        data: &[u8],
    ) -> Result<Packet> {
        if !cmd.is_request() {
            return Err(HmcError::InvalidPacket(format!(
                "{} is not a request command",
                cmd.mnemonic()
            )));
        }
        let expected = cmd.request_data_bytes();
        if data.len() != expected {
            return Err(HmcError::InvalidPacket(format!(
                "{} expects {expected} payload bytes, got {}",
                cmd.mnemonic(),
                data.len()
            )));
        }
        if addr >= (1 << 34) {
            return Err(HmcError::InvalidAddress {
                addr,
                reason: "exceeds the 34-bit HMC address field".into(),
            });
        }
        if tag >= (1 << 9) {
            return Err(HmcError::InvalidPacket(format!(
                "tag {tag} exceeds the 9-bit tag field"
            )));
        }
        let mut p = Packet::default();
        p.set_cmd(cmd);
        p.set_cub(cub);
        p.set_addr(addr);
        p.set_tag(tag);
        let flits = cmd.request_flits();
        p.set_lng(flits);
        p.set_dln(flits);
        p.set_slid(link);
        p.set_data_bytes(data);
        p.seal();
        Ok(p)
    }

    /// Build a flow-control packet (NULL / PRET / TRET / IRTRY): one FLIT.
    pub fn flow(cmd: Command, cub: CubeId, rtc: u8) -> Result<Packet> {
        if !cmd.is_flow() {
            return Err(HmcError::InvalidPacket(format!(
                "{} is not a flow command",
                cmd.mnemonic()
            )));
        }
        let mut p = Packet::default();
        p.set_cmd(cmd);
        p.set_cub(cub);
        p.set_lng(1);
        p.set_dln(1);
        p.set_rtc(rtc);
        p.seal();
        Ok(p)
    }

    /// Build a fully-formed response packet.
    pub fn response(
        cmd: Command,
        tag: u16,
        slid: LinkId,
        status: ResponseStatus,
        data: &[u8],
    ) -> Result<Packet> {
        if !cmd.is_response() {
            return Err(HmcError::InvalidPacket(format!(
                "{} is not a response command",
                cmd.mnemonic()
            )));
        }
        let mut p = Packet::default();
        p.set_cmd(cmd);
        p.set_tag(tag);
        let flits = crate::flit::flits_for_data(data.len());
        p.set_lng(flits);
        p.set_dln(flits);
        p.set_errstat(status);
        p.set_response_slid(slid);
        p.set_dinv(!status.is_ok());
        p.set_data_bytes(data);
        p.seal();
        Ok(p)
    }

    // -------------------------------------------------------------- display

    /// One-line human-readable summary for traces and debuggers, e.g.
    /// `RD64 cub=0 adrs=0x1000 tag=5 lng=1` or `?CMD(0x3f) …` for
    /// undecodable commands.
    pub fn summary(&self) -> String {
        let name = match self.cmd() {
            Ok(cmd) => cmd.mnemonic(),
            Err(_) => format!("?CMD({:#04x})", self.raw_cmd()),
        };
        format!(
            "{name} cub={} adrs={:#x} tag={} lng={}",
            self.cub(),
            self.addr(),
            self.tag(),
            self.lng()
        )
    }

    // ----------------------------------------------------------------- CRC

    /// CRC over the live packet contents with the CRC field zeroed.
    pub fn compute_crc(&self) -> u32 {
        let mut c = Crc32k::new();
        c.update_u64(self.header);
        for w in self.data_words() {
            c.update_u64(*w);
        }
        c.update_u64(self.tail & !0xffff_ffff);
        c.finish()
    }

    /// Stamp the CRC field with the checksum of the current contents.
    pub fn seal(&mut self) {
        let crc = self.compute_crc();
        self.set_crc(crc);
    }

    /// True when the CRC field matches the packet contents.
    pub fn verify_crc(&self) -> bool {
        self.crc() == self.compute_crc()
    }

    // ------------------------------------------------------------ validation

    /// Structural validation: decodable command, LNG==DLN, LNG consistent
    /// with the command class, CRC intact. This is the admission check the
    /// simulator applies to every packet entering a crossbar queue.
    pub fn validate(&self) -> Result<()> {
        let cmd = self.cmd()?;
        let lng = self.lng();
        if lng != self.dln() {
            return Err(HmcError::InvalidPacket(format!(
                "LNG {lng} != DLN {} (length duplication check failed)",
                self.dln()
            )));
        }
        if !crate::flit::is_valid_packet_length(lng) {
            return Err(HmcError::InvalidPacket(format!(
                "LNG {lng} outside 1..=9 FLITs"
            )));
        }
        let expected = if cmd.is_request() {
            cmd.request_flits()
        } else if cmd.is_flow() {
            1
        } else {
            // Responses: error responses are 1 FLIT; read/mode-read carry
            // variable payloads so we accept any legal length and let the
            // host correlate against the original request.
            lng
        };
        if lng != expected {
            return Err(HmcError::InvalidPacket(format!(
                "{} packets must be {expected} FLITs, got {lng}",
                cmd.mnemonic()
            )));
        }
        if !self.verify_crc() {
            return Err(HmcError::InvalidPacket(format!(
                "CRC mismatch: field {:#010x}, computed {:#010x}",
                self.crc(),
                self.compute_crc()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::BlockSize;

    #[test]
    fn header_fields_roundtrip_independently() {
        let mut p = Packet::default();
        p.set_cmd(Command::Rd(BlockSize::B64));
        p.set_cub(5);
        p.set_addr(0x3_dead_beef);
        p.set_tag(0x1ab);
        p.set_lng(9);
        p.set_dln(9);
        assert_eq!(p.cmd().unwrap(), Command::Rd(BlockSize::B64));
        assert_eq!(p.cub(), 5);
        assert_eq!(p.addr(), 0x3_dead_beef);
        assert_eq!(p.tag(), 0x1ab);
        assert_eq!(p.lng(), 9);
        assert_eq!(p.dln(), 9);
        // Mutating one field must not disturb neighbours.
        p.set_tag(0);
        assert_eq!(p.addr(), 0x3_dead_beef);
        assert_eq!(p.lng(), 9);
    }

    #[test]
    fn address_field_is_34_bits() {
        let mut p = Packet::default();
        p.set_addr((1 << 34) - 1);
        assert_eq!(p.addr(), (1 << 34) - 1);
        assert_eq!(p.cub(), 0, "address must not bleed into CUB");
    }

    #[test]
    fn tail_fields_roundtrip() {
        let mut p = Packet::default();
        p.set_rtc(0x1f);
        p.set_slid(7);
        p.set_seq(5);
        p.set_frp(0x1ff);
        p.set_rrp(0x155);
        p.set_crc(0xdead_beef);
        assert_eq!(p.rtc(), 0x1f);
        assert_eq!(p.slid(), 7);
        assert_eq!(p.seq(), 5);
        assert_eq!(p.frp(), 0x1ff);
        assert_eq!(p.rrp(), 0x155);
        assert_eq!(p.crc(), 0xdead_beef);
    }

    #[test]
    fn response_tail_fields_roundtrip() {
        let mut p = Packet::default();
        p.set_errstat(ResponseStatus::Misroute);
        p.set_dinv(true);
        p.set_response_slid(3);
        assert_eq!(p.errstat().unwrap(), ResponseStatus::Misroute);
        assert!(p.dinv());
        assert_eq!(p.response_slid(), 3);
    }

    #[test]
    fn read_request_builder_produces_single_flit_sealed_packet() {
        let p = Packet::request(Command::Rd(BlockSize::B64), 0, 0x1000, 7, 2, &[]).unwrap();
        assert_eq!(p.lng(), 1);
        assert_eq!(p.dln(), 1);
        assert_eq!(p.slid(), 2);
        assert!(p.verify_crc());
        p.validate().unwrap();
    }

    #[test]
    fn write_request_builder_carries_payload() {
        let data = [0xabu8; 64];
        let p = Packet::request(Command::Wr(BlockSize::B64), 1, 0x2000, 3, 0, &data).unwrap();
        assert_eq!(p.lng(), 5);
        assert_eq!(p.data_bytes(), 64);
        assert_eq!(p.data_as_bytes(), data.to_vec());
        p.validate().unwrap();
    }

    #[test]
    fn request_builder_rejects_payload_size_mismatch() {
        let err = Packet::request(Command::Wr(BlockSize::B64), 0, 0, 0, 0, &[0u8; 32]);
        assert!(matches!(err, Err(HmcError::InvalidPacket(_))));
        let err = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 0, 0, &[0u8; 16]);
        assert!(matches!(err, Err(HmcError::InvalidPacket(_))));
    }

    #[test]
    fn request_builder_rejects_oversized_address_and_tag() {
        let err = Packet::request(Command::Rd(BlockSize::B16), 0, 1 << 34, 0, 0, &[]);
        assert!(matches!(err, Err(HmcError::InvalidAddress { .. })));
        let err = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 512, 0, &[]);
        assert!(matches!(err, Err(HmcError::InvalidPacket(_))));
    }

    #[test]
    fn request_builder_rejects_non_request_commands() {
        assert!(Packet::request(Command::RdResponse, 0, 0, 0, 0, &[]).is_err());
        assert!(Packet::request(Command::Null, 0, 0, 0, 0, &[]).is_err());
    }

    #[test]
    fn flow_packets_are_single_flit() {
        for cmd in [Command::Null, Command::Pret, Command::Tret, Command::Irtry] {
            let p = Packet::flow(cmd, 0, 9).unwrap();
            assert_eq!(p.lng(), 1);
            assert_eq!(p.rtc(), 9);
            p.validate().unwrap();
        }
        assert!(Packet::flow(Command::Rd(BlockSize::B16), 0, 0).is_err());
    }

    #[test]
    fn response_builder_round_trips_data() {
        let data: Vec<u8> = (0..64u8).collect();
        let p = Packet::response(Command::RdResponse, 42, 1, ResponseStatus::Ok, &data).unwrap();
        assert_eq!(p.tag(), 42);
        assert_eq!(p.lng(), 5);
        assert_eq!(p.errstat().unwrap(), ResponseStatus::Ok);
        assert!(!p.dinv());
        assert_eq!(p.data_as_bytes(), data);
        p.validate().unwrap();
    }

    #[test]
    fn error_responses_mark_data_invalid() {
        let p = Packet::response(
            Command::ErrorResponse,
            7,
            0,
            ResponseStatus::AddressError,
            &[],
        )
        .unwrap();
        assert!(p.dinv());
        assert_eq!(p.errstat().unwrap(), ResponseStatus::AddressError);
    }

    #[test]
    fn crc_detects_header_and_payload_corruption() {
        let mut p =
            Packet::request(Command::Wr(BlockSize::B32), 0, 0x40, 1, 0, &[0x5au8; 32]).unwrap();
        assert!(p.verify_crc());
        p.set_addr(0x80);
        assert!(!p.verify_crc(), "header corruption must break the CRC");
        p.seal();
        assert!(p.verify_crc());
        p.data[0] ^= 1;
        assert!(!p.verify_crc(), "payload corruption must break the CRC");
    }

    #[test]
    fn crc_ignores_dead_payload_words() {
        // Words beyond LNG are not on the wire and must not affect the CRC.
        let mut p = Packet::request(Command::Rd(BlockSize::B64), 0, 0x40, 1, 0, &[]).unwrap();
        let crc = p.compute_crc();
        p.data[10] = 0xffff_ffff_ffff_ffff;
        assert_eq!(p.compute_crc(), crc);
    }

    #[test]
    fn validate_rejects_length_duplication_mismatch() {
        let mut p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 0, 0, &[]).unwrap();
        p.set_dln(2);
        p.seal();
        assert!(matches!(p.validate(), Err(HmcError::InvalidPacket(_))));
    }

    #[test]
    fn validate_rejects_wrong_length_for_command() {
        let mut p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 0, 0, &[]).unwrap();
        p.set_lng(2);
        p.set_dln(2);
        p.seal();
        assert!(matches!(p.validate(), Err(HmcError::InvalidPacket(_))));
    }

    #[test]
    fn validate_rejects_bad_crc() {
        let mut p = Packet::request(Command::Rd(BlockSize::B16), 0, 0, 0, 0, &[]).unwrap();
        p.set_crc(p.crc().wrapping_add(1));
        assert!(matches!(p.validate(), Err(HmcError::InvalidPacket(_))));
    }

    #[test]
    fn response_status_roundtrip() {
        for s in [
            ResponseStatus::Ok,
            ResponseStatus::CommandError,
            ResponseStatus::AddressError,
            ResponseStatus::Misroute,
            ResponseStatus::Zombie,
            ResponseStatus::LinkPoisoned,
            ResponseStatus::InternalError,
        ] {
            assert_eq!(ResponseStatus::decode(s.encode()).unwrap(), s);
        }
        assert!(ResponseStatus::decode(0x50).is_err());
    }

    #[test]
    fn summary_renders_mnemonic_and_fields() {
        let p = Packet::request(Command::Rd(BlockSize::B64), 2, 0x1000, 5, 0, &[]).unwrap();
        let s = p.summary();
        assert!(s.starts_with("RD64"));
        assert!(s.contains("cub=2"));
        assert!(s.contains("adrs=0x1000"));
        assert!(s.contains("tag=5"));
        assert_eq!(s, format!("{p}"), "Display matches summary");
        let mut bad = p.clone();
        bad.header = (bad.header & !0x3f) | 0x3f;
        assert!(bad.summary().starts_with("?CMD(0x3f)"));
    }

    #[test]
    fn data_byte_helpers_handle_partial_words() {
        let mut p = Packet::default();
        p.set_data_bytes(&[1, 2, 3]);
        assert_eq!(p.data[0], u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
    }
}
