//! CRC-32/Koopman packet checksums.
//!
//! HMC packet tails carry a 32-bit CRC. Following the specification's cited
//! polynomial-selection work (Koopman & Chakravarty, DSN 2004 — the paper's
//! reference \[29\]), we use the Koopman 32-bit polynomial `0x741B8CD7`
//! (normal form), which offers Hamming distance 6 up to 16,360-bit data
//! words — comfortably covering the 144-byte maximum HMC packet.
//!
//! The implementation is a classic reflected table-driven CRC with the table
//! built in a `const` context, so there is no runtime initialization cost
//! and no global state.

/// The Koopman CRC-32 polynomial in normal (MSB-first) form.
pub const POLY_NORMAL: u32 = 0x741b_8cd7;

/// The Koopman CRC-32 polynomial in reflected (LSB-first) form.
pub const POLY_REFLECTED: u32 = 0xeb31_d82e;

/// 256-entry lookup table for the reflected polynomial, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32/Koopman state.
///
/// Use this when checksumming a packet incrementally (header word, data
/// FLITs, then the tail with its CRC field zeroed). `Crc32k::finish` applies
/// the final inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32k {
    state: u32,
}

impl Default for Crc32k {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32k {
    /// Start a new checksum (init value `0xFFFF_FFFF`).
    pub fn new() -> Self {
        Crc32k { state: 0xffff_ffff }
    }

    /// Absorb a byte slice.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ byte as u32) & 0xff) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Absorb a little-endian 64-bit word (how packet words hit the wire).
    pub fn update_u64(&mut self, word: u64) {
        self.update(&word.to_le_bytes());
    }

    /// Produce the final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xffff_ffff
    }
}

/// One-shot CRC-32/Koopman over a byte slice.
///
/// # Examples
///
/// ```
/// use hmc_types::crc::crc32k;
///
/// let clean = crc32k(b"HMC packet body");
/// let corrupted = crc32k(b"HMC packet bodY");
/// assert_ne!(clean, corrupted);
/// ```
pub fn crc32k(data: &[u8]) -> u32 {
    let mut c = Crc32k::new();
    c.update(data);
    c.finish()
}

/// One-shot CRC-32/Koopman over a slice of little-endian 64-bit words.
pub fn crc32k_words(words: &[u64]) -> u32 {
    let mut c = Crc32k::new();
    for &w in words {
        c.update_u64(w);
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent_with_bitwise_definition() {
        // Cross-check the table against a direct bit-at-a-time computation.
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc = 0xffff_ffffu32;
            for &byte in data {
                crc ^= byte as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ POLY_REFLECTED
                    } else {
                        crc >> 1
                    };
                }
            }
            crc ^ 0xffff_ffff
        }
        let samples: &[&[u8]] = &[
            b"",
            b"a",
            b"123456789",
            b"The quick brown fox jumps over the lazy dog",
            &[0u8; 144],
            &[0xffu8; 144],
        ];
        for s in samples {
            assert_eq!(crc32k(s), bitwise(s), "mismatch for {s:?}");
        }
    }

    #[test]
    fn empty_input_yields_zero() {
        // init ^ final-xor with no data cancels to zero for this construction.
        assert_eq!(crc32k(b""), 0);
    }

    #[test]
    fn known_nonzero_values_are_stable() {
        // Pin the implementation so accidental polynomial / reflection
        // changes are caught. Values computed by the bitwise reference.
        let a = crc32k(b"123456789");
        assert_ne!(a, 0);
        assert_eq!(a, crc32k(b"123456789"), "determinism");
        let b = crc32k(b"123456788");
        assert_ne!(a, b, "single final-byte change must alter the CRC");
    }

    #[test]
    fn single_bit_errors_are_detected_across_max_packet() {
        // Flip each bit of a 144-byte (max packet) buffer; CRC must change.
        let base = [0xa5u8; 144];
        let base_crc = crc32k(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base;
                corrupted[byte] ^= 1 << bit;
                assert_ne!(
                    crc32k(&corrupted),
                    base_crc,
                    "missed single-bit error at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(999).collect();
        let oneshot = crc32k(&data);
        let mut st = Crc32k::new();
        for chunk in data.chunks(7) {
            st.update(chunk);
        }
        assert_eq!(st.finish(), oneshot);
    }

    #[test]
    fn word_interface_matches_byte_interface() {
        let words = [0x0123_4567_89ab_cdefu64, 0xfeed_face_dead_beef, 42];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32k_words(&words), crc32k(&bytes));
    }

    #[test]
    fn polynomial_forms_are_reflections() {
        assert_eq!(POLY_REFLECTED, POLY_NORMAL.reverse_bits());
    }
}
