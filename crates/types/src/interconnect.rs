//! Intra-cube interconnect selection.
//!
//! The paper models the logic layer as an idealized full crossbar: any
//! link can hand a packet to any vault quad in one sub-cycle stage.
//! Hadidi et al. show the intra-HMC network often bounds performance, so
//! the simulator makes the fabric between quads a scenario axis. These
//! types name the fabrics and arbitration policies a simulation can
//! select between (`hmc-core`'s `noc` module hosts the implementations)
//! and are shared by the device configuration, the simulation
//! parameters, and the CLI `--interconnect`/`--arbitration` flags.

use serde::{Deserialize, Serialize};

/// Which intra-cube fabric carries packets between quads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterconnectKind {
    /// The paper's idealized full crossbar: any link reaches any quad in
    /// one stage with no intermediate buffering. The zero-regression
    /// default — selecting it leaves the original engine path untouched.
    #[default]
    Crossbar,
    /// A unidirectional ring of quad segments: a packet bound for quad
    /// `q` from quad `p` takes `(q - p) mod Q` hops, one hop per cycle,
    /// through bounded per-quad buffers.
    Ring,
    /// A 2D mesh of quad segments (2×2 for four quads, 2×4 for eight)
    /// with deterministic XY routing: packets correct their column
    /// first, then their row, taking minimal Manhattan-distance hops.
    Mesh,
}

impl InterconnectKind {
    /// Short CLI/service name (`crossbar`, `ring`, `mesh`).
    pub fn name(self) -> &'static str {
        match self {
            InterconnectKind::Crossbar => "crossbar",
            InterconnectKind::Ring => "ring",
            InterconnectKind::Mesh => "mesh",
        }
    }

    /// Look up a fabric by its short name. Returns `None` for unknown
    /// names.
    pub fn by_name(name: &str) -> Option<InterconnectKind> {
        match name {
            "crossbar" => Some(InterconnectKind::Crossbar),
            "ring" => Some(InterconnectKind::Ring),
            "mesh" => Some(InterconnectKind::Mesh),
            _ => None,
        }
    }

    /// Every fabric, in default-first order.
    pub const ALL: [InterconnectKind; 3] = [
        InterconnectKind::Crossbar,
        InterconnectKind::Ring,
        InterconnectKind::Mesh,
    ];
}

/// How a quad segment orders its buffered packets when more want to move
/// in a cycle than its drain budget allows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbitrationKind {
    /// Scan the buffer starting one past last cycle's winner, wrapping —
    /// every slot gets a turn regardless of age or destination.
    #[default]
    RoundRobin,
    /// Always move the packet that entered the device earliest
    /// (ties broken by buffer position), minimizing worst-case latency.
    OldestFirst,
    /// Prefer packets that can be delivered locally this hop (their
    /// destination is this quad) before through-traffic, trading
    /// fairness for lower occupancy.
    LocalityAware,
}

impl ArbitrationKind {
    /// Short CLI/service name (`round-robin`, `oldest-first`,
    /// `locality-aware`).
    pub fn name(self) -> &'static str {
        match self {
            ArbitrationKind::RoundRobin => "round-robin",
            ArbitrationKind::OldestFirst => "oldest-first",
            ArbitrationKind::LocalityAware => "locality-aware",
        }
    }

    /// Look up a policy by its short name. Returns `None` for unknown
    /// names.
    pub fn by_name(name: &str) -> Option<ArbitrationKind> {
        match name {
            "round-robin" => Some(ArbitrationKind::RoundRobin),
            "oldest-first" => Some(ArbitrationKind::OldestFirst),
            "locality-aware" => Some(ArbitrationKind::LocalityAware),
            _ => None,
        }
    }

    /// Every policy, in default-first order.
    pub const ALL: [ArbitrationKind; 3] = [
        ArbitrationKind::RoundRobin,
        ArbitrationKind::OldestFirst,
        ArbitrationKind::LocalityAware,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_by_name() {
        for k in InterconnectKind::ALL {
            assert_eq!(InterconnectKind::by_name(k.name()), Some(k));
        }
        assert_eq!(InterconnectKind::by_name("nope"), None);
        assert_eq!(InterconnectKind::default(), InterconnectKind::Crossbar);
    }

    #[test]
    fn arbitration_round_trips_by_name() {
        for a in ArbitrationKind::ALL {
            assert_eq!(ArbitrationKind::by_name(a.name()), Some(a));
        }
        assert_eq!(ArbitrationKind::by_name("nope"), None);
        assert_eq!(ArbitrationKind::default(), ArbitrationKind::RoundRobin);
    }

    #[test]
    fn kinds_serialize_roundtrip() {
        for k in InterconnectKind::ALL {
            let json = serde_json::to_string(&k).unwrap();
            let back: InterconnectKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, k);
        }
        for a in ArbitrationKind::ALL {
            let json = serde_json::to_string(&a).unwrap();
            let back: ArbitrationKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, a);
        }
    }
}
