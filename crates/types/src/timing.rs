//! Memory-timing backend selection and DDR timing constraints.
//!
//! The paper's vault model processes every non-conflicting request "in
//! equivalent and constant time" (§IV.C.4). Real DRAM stacks pay
//! row-buffer and command-spacing penalties the spec leaves to the
//! implementer. These types name the timing backends a simulation can
//! select between (`hmc-core`'s `VaultTiming` trait hosts the
//! implementations) and carry the DDR-style constraint set shared by the
//! device configuration, the simulation parameters, the C-style API and
//! the CLI `--timing` flags.

use serde::{Deserialize, Serialize};

use crate::error::{HmcError, Result};

/// Which vault timing backend a simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingKind {
    /// The paper's constant-time conflict-window model: one access per
    /// bank per cycle, responses registered the cycle the request
    /// executes. The zero-regression default.
    #[default]
    Classic,
    /// A cycle-accurate DDR-style per-bank state machine: row-buffer
    /// hits/misses/conflicts, ACT/PRE/RD/WR command spacing under
    /// [`DdrTimings`], and refresh closing open rows. Functionally
    /// identical to `Classic` — only latencies differ.
    Ddr,
}

impl TimingKind {
    /// Short CLI/service name (`classic`, `ddr`).
    pub fn name(self) -> &'static str {
        match self {
            TimingKind::Classic => "classic",
            TimingKind::Ddr => "ddr",
        }
    }

    /// Look up a backend by its short name. Returns `None` for unknown
    /// names.
    pub fn by_name(name: &str) -> Option<TimingKind> {
        match name {
            "classic" => Some(TimingKind::Classic),
            "ddr" => Some(TimingKind::Ddr),
            _ => None,
        }
    }

    /// Both backends, in default-first order.
    pub const ALL: [TimingKind; 2] = [TimingKind::Classic, TimingKind::Ddr];
}

/// Row-buffer management policy of the DDR backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Leave the accessed row open after a column access, betting on row
    /// locality (hits cost `tCAS`, conflicts pay `tRP + tRCD`).
    #[default]
    Open,
    /// Auto-precharge after every access: the next access to the bank is
    /// always a row miss, but never a conflict.
    Closed,
}

/// DDR-style bank timing constraints, in vault-clock cycles.
///
/// The defaults approximate a DDR3-1600-class part at the device's
/// 1.25 GHz logic clock — close enough to exercise realistic row-buffer
/// behaviour; sweeps can tighten or relax each knob independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DdrTimings {
    /// RAS-to-CAS delay: ACT to first column command on the row.
    pub t_rcd: u64,
    /// Row precharge time: PRE to the next ACT on the bank.
    pub t_rp: u64,
    /// Row active time: ACT to the earliest PRE of the same row.
    pub t_ras: u64,
    /// Column access latency: RD/WR command to data availability.
    pub t_cas: u64,
    /// Column-to-column spacing between accesses to the same bank.
    /// Must be at least one cycle (a bank never double-issues within a
    /// cycle, preserving per-bank stream order).
    pub t_ccd: u64,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl Default for DdrTimings {
    fn default() -> Self {
        DdrTimings {
            t_rcd: 14,
            t_rp: 14,
            t_ras: 34,
            t_cas: 14,
            t_ccd: 4,
            page_policy: PagePolicy::Open,
        }
    }
}

impl DdrTimings {
    /// Validate the constraint set: `t_ccd` must be at least one cycle so
    /// a bank can never issue twice in the same cycle.
    pub fn validate(&self) -> Result<()> {
        if self.t_ccd == 0 {
            return Err(HmcError::InvalidConfig(
                "t_ccd must be at least one cycle (per-bank issue serialization)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_by_name() {
        for k in TimingKind::ALL {
            assert_eq!(TimingKind::by_name(k.name()), Some(k));
        }
        assert_eq!(TimingKind::by_name("nope"), None);
        assert_eq!(TimingKind::default(), TimingKind::Classic);
    }

    #[test]
    fn default_ddr_timings_validate() {
        DdrTimings::default().validate().unwrap();
        assert_eq!(DdrTimings::default().page_policy, PagePolicy::Open);
    }

    #[test]
    fn zero_ccd_rejected() {
        let t = DdrTimings {
            t_ccd: 0,
            ..DdrTimings::default()
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn timings_serialize_roundtrip() {
        let t = DdrTimings {
            t_rcd: 7,
            page_policy: PagePolicy::Closed,
            ..DdrTimings::default()
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: DdrTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        let json = serde_json::to_string(&TimingKind::Ddr).unwrap();
        let back: TimingKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TimingKind::Ddr);
    }
}
