//! CRC-32/Koopman error-detection properties.
//!
//! The tail CRC must catch every single-bit flip and every burst error
//! of up to 32 bits anywhere in the live packet — header, payload, or
//! tail, including the CRC field itself (Koopman & Chakravarty's
//! polynomial guarantees bursts ≤ the polynomial degree). These tests
//! are exhaustive over positions, not sampled: every bit of a maximal
//! nine-FLIT packet is flipped, and every (start, length ≤ 32) burst
//! window is exercised with the all-ones pattern plus seeded random
//! patterns pinned at the window endpoints.

use proptest::prelude::*;

use hmc_types::crc::{crc32k, Crc32k};
use hmc_types::{BlockSize, Command, Packet};

/// The live wire image of a packet in CRC order: header word, live data
/// words, tail word, all little-endian.
fn wire_bytes(p: &Packet) -> Vec<u8> {
    let mut v = p.header.to_le_bytes().to_vec();
    for w in p.data_words() {
        v.extend_from_slice(&w.to_le_bytes());
    }
    v.extend_from_slice(&p.tail.to_le_bytes());
    v
}

/// Rebuild a packet from a (possibly corrupted) wire image, keeping the
/// original's length fields so the live span stays identical.
fn from_wire(orig: &Packet, bytes: &[u8]) -> Packet {
    let mut p = orig.clone();
    let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
    p.header = word(0);
    let live = orig.data_words().len();
    for i in 0..live {
        p.data[i] = word(1 + i);
    }
    p.tail = word(1 + live);
    p
}

/// A sealed maximal write packet: 9 FLITs, covering header, all eight
/// data FLITs, and tail.
fn maximal_packet() -> Packet {
    let payload: Vec<u8> = (0u16..128).map(|i| (i as u8).wrapping_mul(37)).collect();
    Packet::request(Command::Wr(BlockSize::B128), 1, 0x2_0000_1230, 0x155, 2, &payload).unwrap()
}

/// xorshift-ish deterministic generator for burst patterns.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^ (z >> 31)
}

#[test]
fn every_single_bit_flip_is_detected() {
    let p = maximal_packet();
    assert!(p.verify_crc());
    let wire = wire_bytes(&p);
    for bit in 0..wire.len() * 8 {
        let mut corrupted = wire.clone();
        corrupted[bit / 8] ^= 1 << (bit % 8);
        assert!(
            !from_wire(&p, &corrupted).verify_crc(),
            "single-bit flip at wire bit {bit} went undetected"
        );
    }
}

/// Apply an error burst: XOR `pattern` (whose bit 0 and bit `len-1` are
/// set, per the burst-error definition) into the wire image at `start`.
fn apply_burst(wire: &[u8], start: usize, len: usize, pattern: u64) -> Vec<u8> {
    let mut out = wire.to_vec();
    for j in 0..len {
        if pattern >> j & 1 == 1 {
            let bit = start + j;
            out[bit / 8] ^= 1 << (bit % 8);
        }
    }
    out
}

#[test]
fn every_burst_up_to_32_bits_is_detected() {
    // A 5-FLIT write spans all three regions (header / payload / tail)
    // at an exhaustive-sweep-friendly 640 wire bits.
    let payload: Vec<u8> = (0u8..64).map(|i| i ^ 0xa5).collect();
    let p = Packet::request(Command::Wr(BlockSize::B64), 0, 0x40, 9, 1, &payload).unwrap();
    let wire = wire_bytes(&p);
    let bits = wire.len() * 8;

    for len in 2..=32usize {
        let endpoints = 1 | (1u64 << (len - 1));
        for start in 0..=(bits - len) {
            // All-ones burst…
            let ones = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
            assert!(
                !from_wire(&p, &apply_burst(&wire, start, len, ones)).verify_crc(),
                "all-ones burst (start {start}, len {len}) went undetected"
            );
            // …and a seeded random pattern pinned at both endpoints.
            let pattern = (mix((start * 64 + len) as u64) & (ones >> 1)) | endpoints;
            assert!(
                !from_wire(&p, &apply_burst(&wire, start, len, pattern)).verify_crc(),
                "random burst {pattern:#x} (start {start}, len {len}) went undetected"
            );
        }
    }
}

#[test]
fn bursts_are_detected_in_single_flit_packets_too() {
    // Reads have no payload: header and tail only (128 wire bits).
    let p = Packet::request(Command::Rd(BlockSize::B32), 0, 0x80, 3, 0, &[]).unwrap();
    let wire = wire_bytes(&p);
    for len in 1..=32usize {
        for start in 0..=(wire.len() * 8 - len) {
            let ones = (1u64 << len) - 1;
            assert!(
                !from_wire(&p, &apply_burst(&wire, start, len, ones)).verify_crc(),
                "burst (start {start}, len {len}) went undetected in a read packet"
            );
        }
    }
}

proptest! {
    /// Sealing is stable: a sealed packet verifies, resealing is
    /// idempotent, and mutating the payload then resealing verifies
    /// again with a different checksum.
    #[test]
    fn seal_verify_round_trip_is_stable(
        addr in 0u64..(1 << 34),
        tag in 0u16..512,
        seed in any::<u64>(),
        flip_word in 0usize..8,
    ) {
        let payload: Vec<u8> = (0..128).map(|i| mix(seed ^ i as u64) as u8).collect();
        let mut p = Packet::request(
            Command::Wr(BlockSize::B128), 0, addr, tag, 0, &payload,
        ).unwrap();
        prop_assert!(p.verify_crc(), "request() seals");
        let sealed = p.crc();
        p.seal();
        prop_assert_eq!(p.crc(), sealed, "resealing is idempotent");

        p.data[flip_word] ^= 1;
        prop_assert!(!p.verify_crc(), "stale CRC after payload mutation");
        p.seal();
        prop_assert!(p.verify_crc(), "resealing covers the new payload");
        prop_assert_ne!(p.crc(), sealed, "one payload bit must change the CRC");
    }

    /// Streaming and one-shot CRC agree regardless of chunking.
    #[test]
    fn streaming_crc_matches_one_shot(data in prop::collection::vec(any::<u8>(), 0..256), cut in 0usize..256) {
        let split = cut.min(data.len());
        let mut streaming = Crc32k::new();
        streaming.update(&data[..split]);
        streaming.update(&data[split..]);
        prop_assert_eq!(streaming.finish(), crc32k(&data));
    }
}
