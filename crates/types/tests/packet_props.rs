//! Property tests over the protocol layer: field packing, CRC coverage,
//! command-table totality, and interleave-map structure.

use proptest::prelude::*;

use hmc_types::address::{AddressMap, Field};
use hmc_types::crc::{crc32k, Crc32k};
use hmc_types::{
    BlockSize, Command, CustomMap, HmcError, LowInterleaveMap, MapGeometry, Packet, PhysAddr,
    ResponseStatus,
};

proptest! {
    // ---------------------------------------------------------- packets

    #[test]
    fn header_fields_never_interfere(
        cub in 0u8..8,
        addr in 0u64..(1 << 34),
        tag in 0u16..512,
        lng in 1usize..=9,
    ) {
        let mut p = Packet::default();
        p.set_cub(cub);
        p.set_addr(addr);
        p.set_tag(tag);
        p.set_lng(lng);
        p.set_dln(lng);
        // Re-read every field after all writes: packing must be disjoint.
        prop_assert_eq!(p.cub(), cub);
        prop_assert_eq!(p.addr(), addr);
        prop_assert_eq!(p.tag(), tag);
        prop_assert_eq!(p.lng(), lng);
        prop_assert_eq!(p.dln(), lng);
        // Overwrite one field; the others must be untouched.
        p.set_addr(0);
        prop_assert_eq!(p.cub(), cub);
        prop_assert_eq!(p.tag(), tag);
    }

    #[test]
    fn tail_fields_never_interfere(
        crc in any::<u32>(),
        rtc in 0u8..32,
        slid in 0u8..8,
        seq in 0u8..8,
        frp in 0u16..512,
        rrp in 0u16..512,
    ) {
        let mut p = Packet::default();
        p.set_crc(crc);
        p.set_rtc(rtc);
        p.set_slid(slid);
        p.set_seq(seq);
        p.set_frp(frp);
        p.set_rrp(rrp);
        prop_assert_eq!(p.crc(), crc);
        prop_assert_eq!(p.rtc(), rtc);
        prop_assert_eq!(p.slid(), slid);
        prop_assert_eq!(p.seq(), seq);
        prop_assert_eq!(p.frp(), frp);
        prop_assert_eq!(p.rrp(), rrp);
    }

    #[test]
    fn payload_roundtrips_at_any_legal_length(len in 0usize..=128, seed in any::<u8>()) {
        let data: Vec<u8> = (0..len).map(|i| seed.wrapping_mul(31).wrapping_add(i as u8)).collect();
        let mut p = Packet::default();
        p.set_lng(hmc_types::flit::flits_for_data(len));
        p.set_data_bytes(&data);
        let mut out = p.data_as_bytes();
        out.truncate(len);
        prop_assert_eq!(out, data);
    }

    #[test]
    fn response_payload_corruption_is_detected(
        byte in 0usize..64,
        bit in 0u8..8,
    ) {
        let data = [0x3cu8; 64];
        let mut p = Packet::response(Command::RdResponse, 1, 0, ResponseStatus::Ok, &data).unwrap();
        let word = byte / 8;
        let shift = (byte % 8) * 8 + bit as usize;
        p.data[word] ^= 1u64 << shift;
        prop_assert!(!p.verify_crc(), "flip at byte {byte} bit {bit} undetected");
    }

    // --------------------------------------------------------------- CRC

    #[test]
    fn crc_is_deterministic_and_chunk_invariant(data in prop::collection::vec(any::<u8>(), 0..256), split in any::<usize>()) {
        let whole = crc32k(&data);
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut st = Crc32k::new();
        st.update(&data[..cut]);
        st.update(&data[cut..]);
        prop_assert_eq!(st.finish(), whole);
    }

    #[test]
    fn crc_catches_single_byte_substitutions(
        data in prop::collection::vec(any::<u8>(), 1..144),
        pos in any::<usize>(),
        delta in 1u8..=255,
    ) {
        let mut corrupted = data.clone();
        let i = pos % data.len();
        corrupted[i] = corrupted[i].wrapping_add(delta);
        prop_assert_ne!(crc32k(&data), crc32k(&corrupted));
    }

    // ---------------------------------------------------------- commands

    #[test]
    fn command_decode_never_panics(code in 0u8..64) {
        match Command::decode(code) {
            Ok(cmd) => prop_assert_eq!(cmd.encode(), code),
            Err(HmcError::UnknownCommand(c)) => prop_assert_eq!(c, code),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    #[test]
    fn request_flit_counts_bound_packet_size(code in 0u8..64) {
        if let Ok(cmd) = Command::decode(code) {
            if cmd.is_request() {
                let flits = cmd.request_flits();
                prop_assert!((1..=9).contains(&flits), "{cmd:?}: {flits}");
                prop_assert_eq!(
                    flits,
                    1 + cmd.request_data_bytes().div_ceil(16)
                );
            }
        }
    }

    // ----------------------------------------------------- address maps

    #[test]
    fn low_interleave_vault_stride_is_one_block(
        block in prop::sample::select(vec![16u32, 32, 64, 128]),
        base in any::<u64>(),
    ) {
        let g = MapGeometry { block_bytes: block, vaults: 16, banks: 8, rows: 1 << 10 };
        let m = LowInterleaveMap::new(g).unwrap();
        let cap = g.capacity_bytes();
        let a = (base % (cap - block as u64)) / block as u64 * block as u64;
        let d0 = m.decode(PhysAddr::new(a).unwrap()).unwrap();
        let d1 = m.decode(PhysAddr::new(a + block as u64).unwrap()).unwrap();
        // Adjacent blocks always differ in vault (mod 16 increment).
        prop_assert_eq!((d0.vault + 1) % 16, d1.vault % 16);
    }

    #[test]
    fn custom_maps_partition_address_bits(
        perm in prop::sample::select(vec![
            [Field::Vault, Field::Bank, Field::Row],
            [Field::Bank, Field::Row, Field::Vault],
            [Field::Row, Field::Vault, Field::Bank],
        ]),
        addr in any::<u64>(),
    ) {
        let g = MapGeometry { block_bytes: 32, vaults: 32, banks: 16, rows: 1 << 8 };
        let m = CustomMap::new(g, perm).unwrap();
        let a = PhysAddr::new(addr % g.capacity_bytes()).unwrap();
        let d = m.decode(a).unwrap();
        let back = m.encode(d).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn block_size_total_order_matches_bytes(a in 0u8..8, b in 0u8..8) {
        let x = BlockSize::from_ordinal(a).unwrap();
        let y = BlockSize::from_ordinal(b).unwrap();
        prop_assert_eq!(x.cmp(&y), x.bytes().cmp(&y.bytes()));
    }
}
