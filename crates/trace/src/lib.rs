//! # hmc-trace
//!
//! The tracing infrastructure of the HMC-Sim stack (paper §IV.E): trace
//! events stamped with cycle + physical locality, verbosity filtering,
//! pluggable sinks (text, in-memory, counting, fan-out, shared), per-kind
//! statistics, and the online per-cycle series collector that regenerates
//! the paper's Figure 5 without multi-gigabyte trace files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod power;
pub mod series;
pub mod sink;
pub mod stage;
pub mod stats;

pub use analysis::{
    analyze_bandwidth, percentile_sorted, transaction_efficiency, BandwidthReport,
    LatencyPercentiles, TrafficCounts,
};
pub use event::{EventKind, TraceEvent, TraceRecord};
pub use stage::EventStage;
pub use power::{estimate_energy, Activity, EnergyModel, EnergyReport};
pub use series::{SeriesCollector, SeriesRow};
pub use sink::{
    CountingSink, MultiSink, NullSink, SharedSink, TextSink, TraceSink, Tracer, VecSink,
    Verbosity,
};
pub use stats::{EventCounters, StatsSnapshot, VaultUtilization};
