//! Deterministic trace-event staging.
//!
//! The sharded clock engine processes vaults concurrently, but trace
//! streams must stay bit-identical to the serial engine (paper §IV.E
//! traces are part of the experiment output). Workers therefore stage
//! events into per-shard [`EventStage`] buffers and the engine flushes
//! them in vault-index order at a single merge point. The buffer is
//! reusable — `flush_into`/`clear` retain capacity — so steady-state
//! clocking performs no per-cycle heap allocation.

use hmc_types::Cycle;

use crate::event::TraceEvent;
use crate::sink::Tracer;

/// A reusable, ordered buffer of trace events awaiting emission.
#[derive(Debug, Default)]
pub struct EventStage {
    events: Vec<TraceEvent>,
}

impl EventStage {
    /// An empty stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stage with room for `n` events before reallocating.
    pub fn with_capacity(n: usize) -> Self {
        EventStage {
            events: Vec::with_capacity(n),
        }
    }

    /// Append an event, preserving staging order.
    #[inline]
    pub fn stage(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of staged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The staged events, in staging order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop staged events without emitting them (capacity retained).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Emit every staged event through `tracer` at `cycle`, in staging
    /// order, then clear the buffer (capacity retained).
    pub fn flush_into(&mut self, tracer: &mut Tracer, cycle: Cycle) {
        for ev in self.events.drain(..) {
            tracer.emit(cycle, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, SharedSink, Verbosity};
    use crate::EventKind;

    fn conflict(tag: u16) -> TraceEvent {
        TraceEvent::BankConflict {
            cube: 0,
            vault: 1,
            bank: 2,
            addr: 0x40,
            tag,
        }
    }

    #[test]
    fn stages_and_flushes_in_order() {
        let shared = SharedSink::new(crate::sink::VecSink::default());
        let mut t = Tracer::new(Verbosity::Stalls, Box::new(shared.clone()));
        let mut stage = EventStage::new();
        stage.stage(conflict(1));
        stage.stage(conflict(2));
        assert_eq!(stage.len(), 2);
        stage.flush_into(&mut t, 7);
        assert!(stage.is_empty());
        let records = &shared.0.lock().records;
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].cycle, 7);
        match records[0].event {
            TraceEvent::BankConflict { tag, .. } => assert_eq!(tag, 1),
            _ => panic!("wrong event"),
        }
        match records[1].event {
            TraceEvent::BankConflict { tag, .. } => assert_eq!(tag, 2),
            _ => panic!("wrong event"),
        }
    }

    #[test]
    fn flush_respects_the_verbosity_filter() {
        let shared = SharedSink::new(CountingSink::default());
        let mut t = Tracer::new(Verbosity::Off, Box::new(shared.clone()));
        let mut stage = EventStage::new();
        stage.stage(conflict(1));
        stage.flush_into(&mut t, 0);
        assert!(stage.is_empty(), "flush clears even when filtered");
        assert_eq!(shared.0.lock().counters.get(EventKind::BankConflict), 0);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut stage = EventStage::with_capacity(16);
        for tag in 0..10 {
            stage.stage(conflict(tag));
        }
        let cap = stage.events.capacity();
        stage.clear();
        assert!(stage.is_empty());
        assert_eq!(stage.events.capacity(), cap);
    }
}
