//! Bandwidth and transaction-efficiency analysis.
//!
//! "Entire application memory traces can be revisited and analyzed for
//! accuracy, latency characteristics, bandwidth utilization and overall
//! transaction efficiency" (paper §IV.E). This module computes those
//! derived quantities from run counts: how many bytes of user data moved,
//! how many bytes of packet overhead moved with them, what fraction of
//! the available link bandwidth the run achieved, and the efficiency of
//! the packet format at each block size.

use hmc_types::flit::FLIT_BYTES;
use hmc_types::units::aggregate_bandwidth_gbs;
use hmc_types::{BlockSize, Command, Cycle, LinkSpeed};
use serde::Serialize;

/// Packet-format efficiency of one command: user bytes over wire bytes,
/// counting both the request and (if any) the response packet.
pub fn transaction_efficiency(cmd: Command) -> f64 {
    let data = cmd.request_data_bytes().max(cmd.response_data_bytes()) as f64;
    let wire = ((cmd.request_flits() + cmd.response_flits()) * FLIT_BYTES) as f64;
    if wire == 0.0 {
        0.0
    } else {
        data / wire
    }
}

/// Aggregate run-level bandwidth analysis.
#[derive(Debug, Clone, Serialize)]
pub struct BandwidthReport {
    /// User data bytes moved (reads returned + writes submitted).
    pub data_bytes: u64,
    /// Total wire bytes including headers, tails and response packets.
    pub wire_bytes: u64,
    /// User-data share of wire traffic.
    pub efficiency: f64,
    /// Simulated cycles the traffic occupied.
    pub cycles: Cycle,
    /// User data bytes per simulated cycle.
    pub data_bytes_per_cycle: f64,
    /// Achieved user-data bandwidth in GB/s at the given device clock.
    pub achieved_gbs: f64,
    /// The device's aggregate link bandwidth in GB/s.
    pub peak_gbs: f64,
    /// Achieved / peak.
    pub utilization: f64,
}

/// Inputs for a bandwidth analysis: completed operation counts by shape.
#[derive(Debug, Clone, Default)]
pub struct TrafficCounts {
    /// `(block, completed reads)` pairs.
    pub reads: Vec<(BlockSize, u64)>,
    /// `(block, completed writes)` pairs (acknowledged).
    pub writes: Vec<(BlockSize, u64)>,
    /// `(block, completed posted writes)` pairs.
    pub posted_writes: Vec<(BlockSize, u64)>,
    /// Completed atomics (each one FLIT of operand, WR_RS response).
    pub atomics: u64,
}

impl TrafficCounts {
    /// Uniform single-block traffic (the paper's harness shape).
    pub fn uniform(block: BlockSize, reads: u64, writes: u64) -> Self {
        TrafficCounts {
            reads: vec![(block, reads)],
            writes: vec![(block, writes)],
            posted_writes: Vec::new(),
            atomics: 0,
        }
    }

    fn totals(&self) -> (u64, u64) {
        let mut data = 0u64;
        let mut wire = 0u64;
        for &(bs, n) in &self.reads {
            let cmd = Command::Rd(bs);
            data += n * bs.bytes() as u64;
            wire += n * ((cmd.request_flits() + cmd.response_flits()) * FLIT_BYTES) as u64;
        }
        for &(bs, n) in &self.writes {
            let cmd = Command::Wr(bs);
            data += n * bs.bytes() as u64;
            wire += n * ((cmd.request_flits() + cmd.response_flits()) * FLIT_BYTES) as u64;
        }
        for &(bs, n) in &self.posted_writes {
            let cmd = Command::PostedWr(bs);
            data += n * bs.bytes() as u64;
            wire += n * (cmd.request_flits() * FLIT_BYTES) as u64;
        }
        {
            let cmd = Command::Add16;
            data += self.atomics * 16;
            wire += self.atomics
                * ((cmd.request_flits() + cmd.response_flits()) * FLIT_BYTES) as u64;
        }
        (data, wire)
    }
}

/// Analyze a run: traffic counts + simulated cycles + device parameters.
///
/// `device_ghz` is the simulated device clock rate used to project cycle
/// counts onto wall-clock bandwidth (HMC logic-layer clocks sit in the
/// 1–1.25 GHz range; pick the rate your study assumes).
pub fn analyze_bandwidth(
    counts: &TrafficCounts,
    cycles: Cycle,
    num_links: u8,
    lanes_per_link: u8,
    speed: LinkSpeed,
    device_ghz: f64,
) -> BandwidthReport {
    let (data_bytes, wire_bytes) = counts.totals();
    let peak_gbs = aggregate_bandwidth_gbs(num_links, lanes_per_link, speed);
    let data_bytes_per_cycle = if cycles > 0 {
        data_bytes as f64 / cycles as f64
    } else {
        0.0
    };
    let achieved_gbs = data_bytes_per_cycle * device_ghz;
    BandwidthReport {
        data_bytes,
        wire_bytes,
        efficiency: if wire_bytes > 0 {
            data_bytes as f64 / wire_bytes as f64
        } else {
            0.0
        },
        cycles,
        data_bytes_per_cycle,
        achieved_gbs,
        peak_gbs,
        utilization: if peak_gbs > 0.0 {
            achieved_gbs / peak_gbs
        } else {
            0.0
        },
    }
}

/// p50/p95/p99 latency summary, the tail metrics a serving benchmark
/// reports alongside throughput.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct LatencyPercentiles {
    /// Median latency.
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
}

impl LatencyPercentiles {
    /// Compute p50/p95/p99 from raw samples (sorted internally).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        samples.sort_unstable();
        LatencyPercentiles {
            p50: percentile_sorted(samples, 50.0),
            p95: percentile_sorted(samples, 95.0),
            p99: percentile_sorted(samples, 99.0),
        }
    }
}

/// The `p`-th percentile (nearest-rank method) of an ascending-sorted
/// sample set; 0 for an empty set.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_grows_with_block_size() {
        let e16 = transaction_efficiency(Command::Rd(BlockSize::B16));
        let e64 = transaction_efficiency(Command::Rd(BlockSize::B64));
        let e128 = transaction_efficiency(Command::Rd(BlockSize::B128));
        assert!(e16 < e64 && e64 < e128);
        // RD128: 128 data bytes over (1 + 9) FLITs = 160 bytes.
        assert!((e128 - 128.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn read_and_write_efficiency_match_at_equal_blocks() {
        // RD64: 1-FLIT request + 5-FLIT response; WR64: 5-FLIT request +
        // 1-FLIT response — identical wire totals.
        assert_eq!(
            transaction_efficiency(Command::Rd(BlockSize::B64)),
            transaction_efficiency(Command::Wr(BlockSize::B64)),
        );
    }

    #[test]
    fn posted_writes_are_more_efficient_than_acknowledged() {
        let posted = {
            let cmd = Command::PostedWr(BlockSize::B64);
            64.0 / ((cmd.request_flits() * FLIT_BYTES) as f64)
        };
        let acked = transaction_efficiency(Command::Wr(BlockSize::B64));
        assert!(posted > acked);
    }

    #[test]
    fn flow_commands_have_zero_efficiency() {
        assert_eq!(transaction_efficiency(Command::Null), 0.0);
        assert_eq!(transaction_efficiency(Command::Tret), 0.0);
    }

    #[test]
    fn uniform_traffic_accounting() {
        // 100 RD64 + 100 WR64: data = 200*64; wire = 200 * 6 FLITs * 16.
        let counts = TrafficCounts::uniform(BlockSize::B64, 100, 100);
        let report = analyze_bandwidth(&counts, 1_000, 4, 16, LinkSpeed::Gbps10, 1.0);
        assert_eq!(report.data_bytes, 200 * 64);
        assert_eq!(report.wire_bytes, 200 * 6 * 16);
        assert!((report.efficiency - 64.0 / 96.0).abs() < 1e-12);
        assert!((report.data_bytes_per_cycle - 12.8).abs() < 1e-9);
        assert_eq!(report.peak_gbs, 160.0);
        assert!((report.achieved_gbs - 12.8).abs() < 1e-9);
        assert!((report.utilization - 12.8 / 160.0).abs() < 1e-9);
    }

    #[test]
    fn atomics_and_posted_writes_count() {
        let counts = TrafficCounts {
            reads: vec![],
            writes: vec![],
            posted_writes: vec![(BlockSize::B32, 10)],
            atomics: 5,
        };
        let report = analyze_bandwidth(&counts, 100, 4, 16, LinkSpeed::Gbps10, 1.0);
        // Posted WR32: 3 FLITs request only. ADD16: 2-FLIT request +
        // 1-FLIT response.
        assert_eq!(report.data_bytes, 10 * 32 + 5 * 16);
        assert_eq!(report.wire_bytes, 10 * 3 * 16 + 5 * 3 * 16);
    }

    #[test]
    fn zero_cycle_run_degrades_gracefully() {
        let counts = TrafficCounts::uniform(BlockSize::B64, 0, 0);
        let report = analyze_bandwidth(&counts, 0, 4, 16, LinkSpeed::Gbps10, 1.0);
        assert_eq!(report.data_bytes_per_cycle, 0.0);
        assert_eq!(report.utilization, 0.0);
        assert_eq!(report.efficiency, 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sorted, 50.0), 50);
        assert_eq!(percentile_sorted(&sorted, 95.0), 95);
        assert_eq!(percentile_sorted(&sorted, 99.0), 99);
        assert_eq!(percentile_sorted(&sorted, 100.0), 100);
        assert_eq!(percentile_sorted(&sorted, 0.0), 1);
        assert_eq!(percentile_sorted(&[], 50.0), 0);
        assert_eq!(percentile_sorted(&[7], 99.0), 7);
    }

    #[test]
    fn latency_percentiles_sort_their_input() {
        let mut samples = vec![30, 10, 20, 90, 40, 50, 60, 70, 80, 100];
        let p = LatencyPercentiles::from_samples(&mut samples);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p95, 100);
        assert_eq!(p.p99, 100);
    }
}
