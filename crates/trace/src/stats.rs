//! Event statistics: per-kind counters and per-vault utilization tallies.

use serde::Serialize;

use crate::event::{EventKind, TraceEvent};
use hmc_types::VaultId;

/// Dense per-kind event counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EventCounters {
    counts: Vec<u64>,
}

impl Default for EventCounters {
    fn default() -> Self {
        EventCounters {
            counts: vec![0; EventKind::ALL.len()],
        }
    }
}

impl EventCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the counter for `kind`.
    pub fn count(&mut self, kind: EventKind) {
        self.counts[kind.index()] += 1;
    }

    /// Current count for `kind`.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &EventCounters) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Iterate `(kind, count)` pairs with nonzero counts.
    pub fn nonzero(&self) -> impl Iterator<Item = (EventKind, u64)> + '_ {
        EventKind::ALL
            .iter()
            .map(|&k| (k, self.get(k)))
            .filter(|&(_, c)| c > 0)
    }

    /// Render a human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (k, c) in self.nonzero() {
            out.push_str(&format!("{:<18} {c}\n", k.label()));
        }
        out
    }
}

/// A flat, serializable snapshot of one run's (or one serving session's)
/// counters — the payload behind `hmc-serve`'s snapshot-stats frame and a
/// convenient JSON row for benchmark reports.
///
/// Every field is a plain scalar so the struct serializes identically
/// everywhere; producers fill it from `HostStats`, `SimStats`, and
/// `LatencyStats` (all in other crates, so the assembly happens at the
/// call site).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct StatsSnapshot {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Requests accepted by the device.
    pub injected: u64,
    /// Responses received and correlated.
    pub completed: u64,
    /// Posted (no-response) requests injected.
    pub posted: u64,
    /// Error responses observed.
    pub errors: u64,
    /// Send attempts rejected with a queue-full stall.
    pub send_stalls: u64,
    /// Injection attempts deferred because all 512 tags were in flight.
    pub tag_stalls: u64,
    /// Sends rejected for lack of link flow-control tokens.
    pub token_stalls: u64,
    /// Responses whose tag could not be correlated.
    pub orphans: u64,
    /// Requests currently awaiting responses.
    pub outstanding: u64,
    /// Packets resident in device queues at snapshot time.
    pub queue_occupancy: u64,
    /// Mean request latency in simulated cycles.
    pub mean_latency: f64,
    /// Maximum request latency in simulated cycles.
    pub max_latency: u64,
}

/// Per-vault utilization tallies: the quantities Figure 5 plots per vault
/// (bank conflicts, read requests, write requests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct VaultUtilization {
    /// Bank conflicts recognized per vault.
    pub conflicts: Vec<u64>,
    /// Read requests completed per vault.
    pub reads: Vec<u64>,
    /// Write requests completed per vault.
    pub writes: Vec<u64>,
    /// Atomic requests completed per vault.
    pub atomics: Vec<u64>,
}

impl VaultUtilization {
    /// Tallies for `num_vaults` vaults.
    pub fn new(num_vaults: u16) -> Self {
        let z = vec![0u64; num_vaults as usize];
        VaultUtilization {
            conflicts: z.clone(),
            reads: z.clone(),
            writes: z.clone(),
            atomics: z,
        }
    }

    /// Number of vaults tracked.
    pub fn num_vaults(&self) -> u16 {
        self.conflicts.len() as u16
    }

    /// Update tallies from one event (events without a vault are ignored).
    pub fn observe(&mut self, event: &TraceEvent) {
        let Some(v) = event.vault() else { return };
        let v = v as usize;
        if v >= self.conflicts.len() {
            return;
        }
        match event.kind() {
            EventKind::BankConflict => self.conflicts[v] += 1,
            EventKind::ReadComplete => self.reads[v] += 1,
            EventKind::WriteComplete => self.writes[v] += 1,
            EventKind::AtomicComplete => self.atomics[v] += 1,
            _ => {}
        }
    }

    /// The busiest vault by completed requests, with its count.
    pub fn busiest_vault(&self) -> (VaultId, u64) {
        let mut best = (0u16, 0u64);
        for v in 0..self.num_vaults() as usize {
            let load = self.reads[v] + self.writes[v] + self.atomics[v];
            if load > best.1 {
                best = (v as u16, load);
            }
        }
        best
    }

    /// Coefficient of variation of per-vault load — a balance metric for
    /// the round-robin-injection analysis of §VI.B.
    pub fn load_imbalance(&self) -> f64 {
        let n = self.num_vaults() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let loads: Vec<f64> = (0..self.num_vaults() as usize)
            .map(|v| (self.reads[v] + self.writes[v] + self.atomics[v]) as f64)
            .collect();
        let mean = loads.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = loads.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_total() {
        let mut c = EventCounters::new();
        c.count(EventKind::BankConflict);
        c.count(EventKind::BankConflict);
        c.count(EventKind::ReadComplete);
        assert_eq!(c.get(EventKind::BankConflict), 2);
        assert_eq!(c.get(EventKind::ReadComplete), 1);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn merge_sums_counter_sets() {
        let mut a = EventCounters::new();
        a.count(EventKind::Misroute);
        let mut b = EventCounters::new();
        b.count(EventKind::Misroute);
        b.count(EventKind::Zombie);
        a.merge(&b);
        assert_eq!(a.get(EventKind::Misroute), 2);
        assert_eq!(a.get(EventKind::Zombie), 1);
    }

    #[test]
    fn nonzero_iterates_only_hit_kinds() {
        let mut c = EventCounters::new();
        c.count(EventKind::RouteLatency);
        let hits: Vec<_> = c.nonzero().collect();
        assert_eq!(hits, vec![(EventKind::RouteLatency, 1)]);
    }

    #[test]
    fn summary_renders_labels() {
        let mut c = EventCounters::new();
        c.count(EventKind::XbarRqstStall);
        assert!(c.summary().contains("XBAR_RQST_STALL"));
    }

    #[test]
    fn vault_utilization_tracks_per_vault() {
        let mut u = VaultUtilization::new(4);
        u.observe(&TraceEvent::ReadComplete {
            cube: 0,
            vault: 2,
            bank: 0,
            bytes: 64,
            tag: 0,
        });
        u.observe(&TraceEvent::WriteComplete {
            cube: 0,
            vault: 2,
            bank: 0,
            bytes: 64,
            tag: 1,
        });
        u.observe(&TraceEvent::BankConflict {
            cube: 0,
            vault: 3,
            bank: 1,
            addr: 0,
            tag: 2,
        });
        assert_eq!(u.reads[2], 1);
        assert_eq!(u.writes[2], 1);
        assert_eq!(u.conflicts[3], 1);
        assert_eq!(u.busiest_vault(), (2, 2));
    }

    #[test]
    fn vault_utilization_ignores_vaultless_events() {
        let mut u = VaultUtilization::new(2);
        u.observe(&TraceEvent::TokenReturn {
            cube: 0,
            link: 0,
            tokens: 1,
        });
        assert_eq!(u.reads.iter().sum::<u64>(), 0);
    }

    #[test]
    fn imbalance_is_zero_for_uniform_load() {
        let mut u = VaultUtilization::new(4);
        for v in 0..4 {
            u.observe(&TraceEvent::ReadComplete {
                cube: 0,
                vault: v,
                bank: 0,
                bytes: 64,
                tag: 0,
            });
        }
        assert!(u.load_imbalance().abs() < 1e-12);
    }

    #[test]
    fn imbalance_detects_skew() {
        let mut u = VaultUtilization::new(4);
        for _ in 0..100 {
            u.observe(&TraceEvent::ReadComplete {
                cube: 0,
                vault: 0,
                bank: 0,
                bytes: 64,
                tag: 0,
            });
        }
        assert!(u.load_imbalance() > 1.0);
    }
}
