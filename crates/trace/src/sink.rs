//! Trace sinks and the tracer front-end.
//!
//! "Users have the ability to designate the tracing verbosity as well as
//! the target output file buffers" (paper §IV.E). A [`Tracer`] filters
//! events by [`Verbosity`] and fans them out to a pluggable [`TraceSink`]:
//! text writers for offline analysis, in-memory collectors for tests,
//! counting sinks for statistics, or a multiplexer of several.

use std::io::Write;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, TraceEvent, TraceRecord};
use crate::stats::EventCounters;
use hmc_types::Cycle;

/// Trace granularity, from silent to every sub-cycle operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// No events recorded.
    Off,
    /// Exceptional events only: stalls, conflicts, latency penalties,
    /// misroutes, zombies, error responses.
    Stalls,
    /// Everything, including per-operation completions and token movement
    /// ("each internal sub-cycle operation is recorded", §IV.E).
    Full,
}

impl Verbosity {
    /// The minimum verbosity at which events of `kind` are recorded.
    pub fn threshold_for(kind: EventKind) -> Verbosity {
        match kind {
            EventKind::BankConflict
            | EventKind::XbarRqstStall
            | EventKind::XbarRspStall
            | EventKind::VaultRspStall
            | EventKind::RouteLatency
            | EventKind::Misroute
            | EventKind::Zombie
            | EventKind::ErrorResponse
            | EventKind::LinkRetry
            | EventKind::LinkDown
            | EventKind::LinkRetrain
            | EventKind::PoisonedResponse
            | EventKind::NocStall
            // Injected faults are exceptional events, like link retries.
            | EventKind::RowHammerFlip
            | EventKind::TargetedRefresh => Verbosity::Stalls,
            EventKind::ReadComplete
            | EventKind::WriteComplete
            | EventKind::AtomicComplete
            | EventKind::ModeAccess
            | EventKind::Forwarded
            | EventKind::TokenReturn
            | EventKind::RowHit
            | EventKind::RowMiss
            | EventKind::Precharge
            | EventKind::NocHop => Verbosity::Full,
        }
    }

    /// True if events of `kind` are recorded at this verbosity.
    pub fn records(self, kind: EventKind) -> bool {
        self >= Self::threshold_for(kind)
    }
}

/// Destination for trace records.
pub trait TraceSink: Send {
    /// Consume one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flush buffered output (file sinks). Default: no-op.
    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// Collects records in memory (tests, small runs).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.records.push(*rec);
    }
}

/// Counts events per kind without storing them (whole-run statistics for
/// multi-million-cycle runs where raw traces would reach tens of GB).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Per-kind totals.
    pub counters: EventCounters,
}

impl TraceSink for CountingSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.counters.count(rec.event.kind());
    }
}

/// Writes one text line per record to any `io::Write` target.
pub struct TextSink<W: Write + Send> {
    writer: W,
}

impl<W: Write + Send> TextSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        TextSink { writer }
    }

    /// Unwrap the writer (tests).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> TraceSink for TextSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        // Trace output failures must not abort a simulation; drop silently,
        // matching the C library's fprintf behaviour.
        let _ = writeln!(self.writer, "{}", rec.to_line());
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Fans records out to several sinks.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl MultiSink {
    /// Empty multiplexer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink (builder style).
    pub fn with(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl TraceSink for MultiSink {
    fn record(&mut self, rec: &TraceRecord) {
        for s in &mut self.sinks {
            s.record(rec);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// A sink handle shareable between the simulator (which writes) and the
/// harness (which reads results afterwards).
#[derive(Debug, Default)]
pub struct SharedSink<S: TraceSink>(pub Arc<Mutex<S>>);

impl<S: TraceSink> SharedSink<S> {
    /// Wrap a sink for shared access.
    pub fn new(sink: S) -> Self {
        SharedSink(Arc::new(Mutex::new(sink)))
    }

    /// A second handle to the same sink.
    pub fn handle(&self) -> SharedSink<S> {
        SharedSink(Arc::clone(&self.0))
    }
}

impl<S: TraceSink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        self.handle()
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn record(&mut self, rec: &TraceRecord) {
        self.0.lock().record(rec);
    }

    fn flush(&mut self) {
        self.0.lock().flush();
    }
}

/// The tracing front-end held by a simulation object: verbosity filter +
/// sink. Emission is a cheap branch when tracing is off.
pub struct Tracer {
    verbosity: Verbosity,
    sink: Box<dyn TraceSink>,
    emitted: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("verbosity", &self.verbosity)
            .field("emitted", &self.emitted)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A silent tracer.
    pub fn off() -> Self {
        Tracer {
            verbosity: Verbosity::Off,
            sink: Box::new(NullSink),
            emitted: 0,
        }
    }

    /// A tracer with the given verbosity and sink.
    pub fn new(verbosity: Verbosity, sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            verbosity,
            sink,
            emitted: 0,
        }
    }

    /// Current verbosity.
    pub fn verbosity(&self) -> Verbosity {
        self.verbosity
    }

    /// Change verbosity mid-run.
    pub fn set_verbosity(&mut self, v: Verbosity) {
        self.verbosity = v;
    }

    /// True if events of `kind` would currently be recorded — callers can
    /// skip building event payloads entirely when false.
    #[inline]
    pub fn enabled(&self, kind: EventKind) -> bool {
        self.verbosity.records(kind)
    }

    /// Emit an event at the given cycle, subject to the verbosity filter.
    #[inline]
    pub fn emit(&mut self, cycle: Cycle, event: TraceEvent) {
        if self.verbosity.records(event.kind()) {
            self.emitted += 1;
            self.sink.record(&TraceRecord { cycle, event });
        }
    }

    /// Number of records that passed the filter so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Flush the underlying sink.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conflict(cycle: Cycle) -> TraceRecord {
        TraceRecord {
            cycle,
            event: TraceEvent::BankConflict {
                cube: 0,
                vault: 1,
                bank: 2,
                addr: 0x40,
                tag: 9,
            },
        }
    }

    fn read_complete() -> TraceEvent {
        TraceEvent::ReadComplete {
            cube: 0,
            vault: 1,
            bank: 2,
            bytes: 64,
            tag: 9,
        }
    }

    #[test]
    fn verbosity_thresholds_are_ordered() {
        assert!(Verbosity::Off < Verbosity::Stalls);
        assert!(Verbosity::Stalls < Verbosity::Full);
        assert!(!Verbosity::Off.records(EventKind::BankConflict));
        assert!(Verbosity::Stalls.records(EventKind::BankConflict));
        assert!(!Verbosity::Stalls.records(EventKind::ReadComplete));
        assert!(Verbosity::Full.records(EventKind::ReadComplete));
        for k in EventKind::ALL {
            assert!(Verbosity::Full.records(k), "Full records everything");
        }
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut s = VecSink::default();
        s.record(&conflict(1));
        s.record(&conflict(2));
        assert_eq!(s.records.len(), 2);
        assert_eq!(s.records[0].cycle, 1);
        assert_eq!(s.records[1].cycle, 2);
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let mut s = CountingSink::default();
        s.record(&conflict(0));
        s.record(&conflict(1));
        s.record(&TraceRecord {
            cycle: 2,
            event: read_complete(),
        });
        assert_eq!(s.counters.get(EventKind::BankConflict), 2);
        assert_eq!(s.counters.get(EventKind::ReadComplete), 1);
        assert_eq!(s.counters.get(EventKind::Zombie), 0);
    }

    #[test]
    fn text_sink_writes_lines() {
        let mut s = TextSink::new(Vec::new());
        s.record(&conflict(77));
        s.flush();
        let out = String::from_utf8(s.into_inner()).unwrap();
        assert!(out.starts_with("77 BANK_CONFLICT"));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn multi_sink_fans_out() {
        let counting = SharedSink::new(CountingSink::default());
        let vec = SharedSink::new(VecSink::default());
        let mut multi = MultiSink::new()
            .with(Box::new(counting.clone()))
            .with(Box::new(vec.clone()));
        multi.record(&conflict(5));
        assert_eq!(counting.0.lock().counters.get(EventKind::BankConflict), 1);
        assert_eq!(vec.0.lock().records.len(), 1);
    }

    #[test]
    fn tracer_filters_by_verbosity() {
        let shared = SharedSink::new(CountingSink::default());
        let mut t = Tracer::new(Verbosity::Stalls, Box::new(shared.clone()));
        t.emit(1, conflict(1).event); // stall-class: recorded
        t.emit(2, read_complete()); // full-class: filtered
        assert_eq!(t.emitted(), 1);
        assert_eq!(shared.0.lock().counters.total(), 1);
        t.set_verbosity(Verbosity::Full);
        t.emit(3, read_complete());
        assert_eq!(t.emitted(), 2);
    }

    #[test]
    fn off_tracer_emits_nothing() {
        let shared = SharedSink::new(VecSink::default());
        let mut t = Tracer::new(Verbosity::Off, Box::new(shared.clone()));
        t.emit(0, conflict(0).event);
        assert_eq!(t.emitted(), 0);
        assert!(shared.0.lock().records.is_empty());
        assert!(!t.enabled(EventKind::BankConflict));
    }

    #[test]
    fn default_tracer_is_off() {
        let t = Tracer::default();
        assert_eq!(t.verbosity(), Verbosity::Off);
    }
}
