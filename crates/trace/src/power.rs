//! Energy and power estimation.
//!
//! The HMC's headline claim is "a very compact, power efficient package"
//! (paper §III.A); published gen-1 figures put the cube around 10.5 pJ/bit
//! against ~65 pJ/bit for DDR3-class parts. This module turns the
//! simulator's operation counters into first-order energy estimates using
//! a configurable coefficient set, so workload and topology studies can
//! compare designs on energy as well as cycles.
//!
//! The model is deliberately linear: per-bit SERDES transport energy,
//! per-bit DRAM array access energy, per-row-activation energy, per-packet
//! logic-layer energy, plus background power integrated over the run.

use serde::Serialize;

use hmc_types::Cycle;

/// Energy coefficients for one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyModel {
    /// SERDES link transport energy per wire bit (pJ/bit).
    pub link_pj_per_bit: f64,
    /// DRAM array access energy per data bit moved (pJ/bit).
    pub dram_pj_per_bit: f64,
    /// Row activation energy per row-buffer miss (pJ).
    pub activate_pj: f64,
    /// Logic-layer (crossbar + vault controller) energy per packet (pJ).
    pub logic_pj_per_packet: f64,
    /// Background (static + refresh) power in milliwatts.
    pub background_mw: f64,
}

impl EnergyModel {
    /// First-generation HMC coefficients, assembled from the published
    /// ~10.48 pJ/bit total split across link, DRAM and logic energy.
    pub fn hmc_gen1() -> Self {
        EnergyModel {
            link_pj_per_bit: 3.7,
            dram_pj_per_bit: 3.7,
            activate_pj: 900.0,
            logic_pj_per_packet: 2_000.0,
            background_mw: 500.0,
        }
    }

    /// A DDR3-class comparison point (single coefficient dominated by the
    /// channel + array energy; no packetized logic layer).
    pub fn ddr3_like() -> Self {
        EnergyModel {
            link_pj_per_bit: 45.0,
            dram_pj_per_bit: 20.0,
            activate_pj: 1_700.0,
            logic_pj_per_packet: 0.0,
            background_mw: 350.0,
        }
    }
}

/// Activity observed during a run — the inputs to the energy estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct Activity {
    /// Total wire bytes moved across links (headers + payloads, both
    /// directions).
    pub wire_bytes: u64,
    /// User data bytes moved through DRAM arrays.
    pub dram_bytes: u64,
    /// Row-buffer misses (row activations).
    pub row_activations: u64,
    /// Packets handled by the logic layer (requests + responses).
    pub packets: u64,
    /// Simulated cycles of the run.
    pub cycles: Cycle,
}

/// The estimate: energy by component plus derived figures of merit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EnergyReport {
    /// Link transport energy (pJ).
    pub link_pj: f64,
    /// DRAM array energy (pJ).
    pub dram_pj: f64,
    /// Row activation energy (pJ).
    pub activate_pj: f64,
    /// Logic-layer energy (pJ).
    pub logic_pj: f64,
    /// Background energy integrated over the run at the given clock (pJ).
    pub background_pj: f64,
    /// Sum of all components (pJ).
    pub total_pj: f64,
    /// Total energy per user data bit (pJ/bit); 0 when no data moved.
    pub pj_per_bit: f64,
    /// Average power over the run in watts at the given clock rate.
    pub avg_power_w: f64,
}

/// Estimate energy for `activity` under `model`, with the device logic
/// clock at `device_ghz` (background power integrates over wall time).
pub fn estimate_energy(activity: &Activity, model: &EnergyModel, device_ghz: f64) -> EnergyReport {
    let link_pj = activity.wire_bytes as f64 * 8.0 * model.link_pj_per_bit;
    let dram_pj = activity.dram_bytes as f64 * 8.0 * model.dram_pj_per_bit;
    let activate_pj = activity.row_activations as f64 * model.activate_pj;
    let logic_pj = activity.packets as f64 * model.logic_pj_per_packet;
    // cycles / (GHz * 1e9) seconds * mW = 1e-3 W → pJ = W * s * 1e12.
    let seconds = if device_ghz > 0.0 {
        activity.cycles as f64 / (device_ghz * 1e9)
    } else {
        0.0
    };
    let background_pj = model.background_mw * 1e-3 * seconds * 1e12;
    let total_pj = link_pj + dram_pj + activate_pj + logic_pj + background_pj;
    let data_bits = activity.dram_bytes as f64 * 8.0;
    EnergyReport {
        link_pj,
        dram_pj,
        activate_pj,
        logic_pj,
        background_pj,
        total_pj,
        pj_per_bit: if data_bits > 0.0 { total_pj / data_bits } else { 0.0 },
        avg_power_w: if seconds > 0.0 {
            total_pj * 1e-12 / seconds
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_activity() -> Activity {
        Activity {
            wire_bytes: 96 * 1_000_000,  // 1M 64B reads: 6 FLITs each
            dram_bytes: 64 * 1_000_000,
            row_activations: 500_000,
            packets: 2_000_000,
            cycles: 100_000,
        }
    }

    #[test]
    fn components_add_up() {
        let r = estimate_energy(&busy_activity(), &EnergyModel::hmc_gen1(), 1.25);
        let sum = r.link_pj + r.dram_pj + r.activate_pj + r.logic_pj + r.background_pj;
        assert!((r.total_pj - sum).abs() < 1e-6);
        assert!(r.total_pj > 0.0);
        assert!(r.pj_per_bit > 0.0);
        assert!(r.avg_power_w > 0.0);
    }

    #[test]
    fn energy_scales_linearly_with_traffic() {
        let a = busy_activity();
        let mut double = a;
        double.wire_bytes *= 2;
        double.dram_bytes *= 2;
        double.row_activations *= 2;
        double.packets *= 2;
        // Same cycles: background unchanged, dynamic doubles.
        let m = EnergyModel::hmc_gen1();
        let r1 = estimate_energy(&a, &m, 1.25);
        let r2 = estimate_energy(&double, &m, 1.25);
        assert!((r2.link_pj - 2.0 * r1.link_pj).abs() < 1e-3);
        assert!((r2.dram_pj - 2.0 * r1.dram_pj).abs() < 1e-3);
        assert!((r2.background_pj - r1.background_pj).abs() < 1e-3);
    }

    #[test]
    fn hmc_beats_ddr3_per_bit_on_bandwidth_bound_traffic() {
        // The marquee comparison: for the same streamed data, the HMC
        // coefficient set lands well below the DDR3-like set.
        let a = Activity {
            wire_bytes: 160 * 1_000_000,
            dram_bytes: 128 * 1_000_000,
            row_activations: 31_250, // large blocks, high row locality
            packets: 1_000_000,
            cycles: 1_000_000,
        };
        let hmc = estimate_energy(&a, &EnergyModel::hmc_gen1(), 1.25);
        let ddr = estimate_energy(&a, &EnergyModel::ddr3_like(), 1.25);
        assert!(
            hmc.pj_per_bit < ddr.pj_per_bit / 3.0,
            "HMC {:.1} pJ/bit vs DDR3-like {:.1} pJ/bit",
            hmc.pj_per_bit,
            ddr.pj_per_bit
        );
        // And the HMC figure is in the published ballpark (order 10 pJ/b).
        assert!(
            (5.0..30.0).contains(&hmc.pj_per_bit),
            "HMC estimate {:.1} pJ/bit out of plausible range",
            hmc.pj_per_bit
        );
    }

    #[test]
    fn idle_run_is_background_only() {
        let a = Activity {
            cycles: 1_000,
            ..Activity::default()
        };
        let r = estimate_energy(&a, &EnergyModel::hmc_gen1(), 1.0);
        assert_eq!(r.link_pj, 0.0);
        assert_eq!(r.dram_pj, 0.0);
        assert!(r.background_pj > 0.0);
        assert_eq!(r.pj_per_bit, 0.0);
        // 500 mW for 1 µs = 0.5 µJ.
        assert!((r.total_pj - 0.5e6).abs() < 1.0);
    }

    #[test]
    fn zero_clock_degrades_gracefully() {
        let r = estimate_energy(&busy_activity(), &EnergyModel::hmc_gen1(), 0.0);
        assert_eq!(r.background_pj, 0.0);
        assert_eq!(r.avg_power_w, 0.0);
        assert!(r.total_pj > 0.0, "dynamic energy still counted");
    }
}
