//! Trace events.
//!
//! "Each trace event is marked with its physical locality as well as the
//! respective internal clock tick when the respective trace event was
//! raised" (paper §IV.E). [`TraceRecord`] couples a [`TraceEvent`] — which
//! carries its locality (cube / link / quad / vault / bank) — with the
//! 64-bit clock value at which it was raised.

use hmc_types::{BankId, CubeId, Cycle, LinkId, QuadId, VaultId};

/// Classification of trace events, used for filtering and counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// A potential bank conflict recognized on a vault request queue.
    BankConflict,
    /// A request could not leave a crossbar queue (no open vault slot).
    XbarRqstStall,
    /// A response could not enter a crossbar response queue.
    XbarRspStall,
    /// A vault could not register a response (response queue full).
    VaultRspStall,
    /// A request arrived on a link not co-located with the target quad.
    RouteLatency,
    /// A packet addressed to an unreachable cube.
    Misroute,
    /// A packet exceeded its hop budget and was retired as a zombie.
    Zombie,
    /// A read request completed at a bank.
    ReadComplete,
    /// A write request completed at a bank.
    WriteComplete,
    /// An atomic (read-modify-write) request completed at a bank.
    AtomicComplete,
    /// An in-band MODE_READ / MODE_WRITE register access completed.
    ModeAccess,
    /// A packet was forwarded toward another cube (chaining hop).
    Forwarded,
    /// Link flow-control token movement (TRET/PRET processing).
    TokenReturn,
    /// An error response packet was generated.
    ErrorResponse,
    /// A link-level CRC failure was detected and the packet was
    /// retransmitted (error-simulation mode).
    LinkRetry,
    /// A link exhausted its retry attempts and went down for retraining.
    LinkDown,
    /// A link completed its retraining window and came back up.
    LinkRetrain,
    /// A request was aborted with a poisoned-`ERRSTAT` response after
    /// link-retry exhaustion.
    PoisonedResponse,
    /// A DDR-timed access found its row already open (column access only).
    RowHit,
    /// A DDR-timed access activated a precharged bank's row.
    RowMiss,
    /// A DDR-timed bank precharged a row (conflict eviction or
    /// closed-page auto-precharge).
    Precharge,
    /// A packet crossed one quad-to-quad segment of the intra-cube NoC
    /// (ring/mesh fabrics only; the crossbar fabric never hops).
    NocHop,
    /// A packet could not advance in the intra-cube NoC this cycle: the
    /// next segment buffer was full, the delivery queue was full, or a
    /// same-destination elder held its stream in place.
    NocStall,
    /// A RowHammer threshold crossing disturbed a victim row, flipping
    /// one or more bits (cell-fault simulation mode).
    RowHammerFlip,
    /// A TRR mitigation refreshed an aggressor's neighborhood instead of
    /// letting the crossing disturb it (cell-fault simulation mode).
    TargetedRefresh,
}

impl EventKind {
    /// Every kind, for exhaustive iteration in counters and tests.
    pub const ALL: [EventKind; 25] = [
        EventKind::BankConflict,
        EventKind::XbarRqstStall,
        EventKind::XbarRspStall,
        EventKind::VaultRspStall,
        EventKind::RouteLatency,
        EventKind::Misroute,
        EventKind::Zombie,
        EventKind::ReadComplete,
        EventKind::WriteComplete,
        EventKind::AtomicComplete,
        EventKind::ModeAccess,
        EventKind::Forwarded,
        EventKind::TokenReturn,
        EventKind::ErrorResponse,
        EventKind::LinkRetry,
        EventKind::LinkDown,
        EventKind::LinkRetrain,
        EventKind::PoisonedResponse,
        EventKind::RowHit,
        EventKind::RowMiss,
        EventKind::Precharge,
        EventKind::NocHop,
        EventKind::NocStall,
        EventKind::RowHammerFlip,
        EventKind::TargetedRefresh,
    ];

    /// Dense index for array-backed counters.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).expect("in ALL")
    }

    /// Short label used in text trace lines.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::BankConflict => "BANK_CONFLICT",
            EventKind::XbarRqstStall => "XBAR_RQST_STALL",
            EventKind::XbarRspStall => "XBAR_RSP_STALL",
            EventKind::VaultRspStall => "VAULT_RSP_STALL",
            EventKind::RouteLatency => "ROUTE_LATENCY",
            EventKind::Misroute => "MISROUTE",
            EventKind::Zombie => "ZOMBIE",
            EventKind::ReadComplete => "READ_COMPLETE",
            EventKind::WriteComplete => "WRITE_COMPLETE",
            EventKind::AtomicComplete => "ATOMIC_COMPLETE",
            EventKind::ModeAccess => "MODE_ACCESS",
            EventKind::Forwarded => "FORWARDED",
            EventKind::TokenReturn => "TOKEN_RETURN",
            EventKind::ErrorResponse => "ERROR_RESPONSE",
            EventKind::LinkRetry => "LINK_RETRY",
            EventKind::LinkDown => "LINK_DOWN",
            EventKind::LinkRetrain => "LINK_RETRAIN",
            EventKind::PoisonedResponse => "POISONED_RESPONSE",
            EventKind::RowHit => "ROW_HIT",
            EventKind::RowMiss => "ROW_MISS",
            EventKind::Precharge => "PRECHARGE",
            EventKind::NocHop => "NOC_HOP",
            EventKind::NocStall => "NOC_STALL",
            EventKind::RowHammerFlip => "ROW_HAMMER_FLIP",
            EventKind::TargetedRefresh => "TARGETED_REFRESH",
        }
    }
}

/// A single trace event with its physical locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Conflicting bank addressing within a vault queue's spatial window
    /// (recognized by sub-cycle stage 3, enforced by stage 4).
    BankConflict {
        /// Device on which the conflict was recognized.
        cube: CubeId,
        /// Vault whose request queue holds the conflicting packets.
        vault: VaultId,
        /// The contested bank.
        bank: BankId,
        /// Physical address of the stalled packet.
        addr: u64,
        /// Tag of the stalled packet.
        tag: u16,
    },
    /// A request could not be routed from a crossbar arbiter to the target
    /// vault "due to inadequate open vault queue slots" (paper §VI.B).
    XbarRqstStall {
        /// Device observing the stall.
        cube: CubeId,
        /// Link whose crossbar queue holds the stalled packet.
        link: LinkId,
        /// Vault that had no open slot.
        vault: VaultId,
        /// Tag of the stalled packet.
        tag: u16,
    },
    /// A response could not be registered with a crossbar response queue.
    XbarRspStall {
        /// Device observing the stall.
        cube: CubeId,
        /// Link whose response queue was full.
        link: LinkId,
        /// Tag of the stalled packet.
        tag: u16,
    },
    /// A vault could not register a response (vault response queue full);
    /// the request stays queued and retries next cycle.
    VaultRspStall {
        /// Device observing the stall.
        cube: CubeId,
        /// Vault whose response queue was full.
        vault: VaultId,
        /// Tag of the request held back.
        tag: u16,
    },
    /// "Higher latencies are detected due to the physical locality of the
    /// queue versus the destination vault" (paper §IV.C.1): the packet
    /// entered on a link whose quad is not the destination quad.
    RouteLatency {
        /// Device observing the penalty.
        cube: CubeId,
        /// Link the packet arrived on.
        link: LinkId,
        /// Quad co-located with the arrival link.
        arrival_quad: QuadId,
        /// Quad owning the destination vault.
        dest_quad: QuadId,
        /// Destination vault.
        vault: VaultId,
        /// Tag of the penalized packet.
        tag: u16,
    },
    /// A packet addressed to a cube this device cannot reach.
    Misroute {
        /// Device that failed to route.
        cube: CubeId,
        /// Link the packet arrived on.
        link: LinkId,
        /// The unreachable destination cube.
        dest_cube: CubeId,
        /// Tag of the misrouted packet.
        tag: u16,
    },
    /// A packet exceeded its hop budget (loopback-style misconfiguration).
    Zombie {
        /// Device that retired the packet.
        cube: CubeId,
        /// Tag of the retired packet.
        tag: u16,
        /// Hops the packet had taken.
        hops: u32,
    },
    /// A read completed at a bank.
    ReadComplete {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// Bytes read.
        bytes: u32,
        /// Request tag.
        tag: u16,
    },
    /// A write completed at a bank.
    WriteComplete {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// Bytes written.
        bytes: u32,
        /// Request tag.
        tag: u16,
    },
    /// An atomic completed at a bank.
    AtomicComplete {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// Request tag.
        tag: u16,
    },
    /// An in-band register access completed.
    ModeAccess {
        /// Device.
        cube: CubeId,
        /// Register index accessed.
        reg: u32,
        /// True for MODE_WRITE, false for MODE_READ.
        write: bool,
        /// Request tag.
        tag: u16,
    },
    /// A packet took a chaining hop toward another cube.
    Forwarded {
        /// Device forwarding the packet.
        cube: CubeId,
        /// Egress link used.
        link: LinkId,
        /// Next-hop cube.
        next_cube: CubeId,
        /// Final destination cube.
        dest_cube: CubeId,
        /// Tag of the forwarded packet.
        tag: u16,
    },
    /// Flow-control token movement on a link.
    TokenReturn {
        /// Device.
        cube: CubeId,
        /// Link.
        link: LinkId,
        /// Tokens returned.
        tokens: u8,
    },
    /// An error response packet was generated.
    ErrorResponse {
        /// Device generating the error response.
        cube: CubeId,
        /// Tag of the failing request.
        tag: u16,
        /// Encoded `ResponseStatus`.
        status: u8,
    },
    /// A link-level CRC failure was detected; the packet is held for a
    /// retransmission penalty before continuing.
    LinkRetry {
        /// Device detecting the failure.
        cube: CubeId,
        /// Link the corrupted packet arrived on.
        link: LinkId,
        /// Tag of the retransmitted packet.
        tag: u16,
    },
    /// A link exhausted its retry attempts on one packet and went down
    /// for a retraining window.
    LinkDown {
        /// Device taking the link down.
        cube: CubeId,
        /// The failed link.
        link: LinkId,
        /// Tag of the packet that exhausted the retries.
        tag: u16,
        /// Transmission attempts consumed (initial send + retries).
        attempts: u32,
    },
    /// A link completed its retraining window and resumed moving
    /// packets (wire SEQ restarted).
    LinkRetrain {
        /// Device bringing the link back up.
        cube: CubeId,
        /// The retrained link.
        link: LinkId,
    },
    /// A request was aborted with a poisoned-`ERRSTAT` response after
    /// link-retry exhaustion: the host receives a typed error instead
    /// of a silent drop.
    PoisonedResponse {
        /// Device synthesizing the poisoned response.
        cube: CubeId,
        /// Link the doomed request occupied.
        link: LinkId,
        /// Tag of the poisoned request.
        tag: u16,
    },
    /// A DDR-timed access hit its bank's open row.
    RowHit {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// The open row.
        row: u64,
        /// Request tag.
        tag: u16,
    },
    /// A DDR-timed access activated a row in a precharged bank.
    RowMiss {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// The activated row.
        row: u64,
        /// Request tag.
        tag: u16,
    },
    /// A DDR-timed bank issued a precharge (row-conflict eviction or
    /// closed-page auto-precharge).
    Precharge {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// Request tag of the access forcing the precharge.
        tag: u16,
    },
    /// A packet crossed one quad-to-quad segment of the intra-cube NoC.
    NocHop {
        /// Device.
        cube: CubeId,
        /// Quad segment the packet left.
        from_quad: QuadId,
        /// Quad segment the packet entered.
        to_quad: QuadId,
        /// Tag of the hopping packet.
        tag: u16,
    },
    /// A packet could not advance in the intra-cube NoC this cycle
    /// (segment buffer full, delivery queue full, or stream order held
    /// it behind a same-destination elder).
    NocStall {
        /// Device.
        cube: CubeId,
        /// Quad segment holding the packet.
        quad: QuadId,
        /// Tag of the stalled packet.
        tag: u16,
    },
    /// A RowHammer threshold crossing flipped bits in a victim row.
    RowHammerFlip {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// The disturbed victim row.
        row: u64,
        /// Bits flipped in the victim row by this crossing.
        bits: u64,
    },
    /// A TRR targeted refresh absorbed a threshold crossing: the
    /// aggressor's neighborhood was refreshed instead of disturbed.
    TargetedRefresh {
        /// Device.
        cube: CubeId,
        /// Vault.
        vault: VaultId,
        /// Bank.
        bank: BankId,
        /// The aggressor row whose neighborhood was refreshed.
        row: u64,
    },
}

impl TraceEvent {
    /// The event's kind, for filtering and counting.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::BankConflict { .. } => EventKind::BankConflict,
            TraceEvent::XbarRqstStall { .. } => EventKind::XbarRqstStall,
            TraceEvent::XbarRspStall { .. } => EventKind::XbarRspStall,
            TraceEvent::VaultRspStall { .. } => EventKind::VaultRspStall,
            TraceEvent::RouteLatency { .. } => EventKind::RouteLatency,
            TraceEvent::Misroute { .. } => EventKind::Misroute,
            TraceEvent::Zombie { .. } => EventKind::Zombie,
            TraceEvent::ReadComplete { .. } => EventKind::ReadComplete,
            TraceEvent::WriteComplete { .. } => EventKind::WriteComplete,
            TraceEvent::AtomicComplete { .. } => EventKind::AtomicComplete,
            TraceEvent::ModeAccess { .. } => EventKind::ModeAccess,
            TraceEvent::Forwarded { .. } => EventKind::Forwarded,
            TraceEvent::TokenReturn { .. } => EventKind::TokenReturn,
            TraceEvent::ErrorResponse { .. } => EventKind::ErrorResponse,
            TraceEvent::LinkRetry { .. } => EventKind::LinkRetry,
            TraceEvent::LinkDown { .. } => EventKind::LinkDown,
            TraceEvent::LinkRetrain { .. } => EventKind::LinkRetrain,
            TraceEvent::PoisonedResponse { .. } => EventKind::PoisonedResponse,
            TraceEvent::RowHit { .. } => EventKind::RowHit,
            TraceEvent::RowMiss { .. } => EventKind::RowMiss,
            TraceEvent::Precharge { .. } => EventKind::Precharge,
            TraceEvent::NocHop { .. } => EventKind::NocHop,
            TraceEvent::NocStall { .. } => EventKind::NocStall,
            TraceEvent::RowHammerFlip { .. } => EventKind::RowHammerFlip,
            TraceEvent::TargetedRefresh { .. } => EventKind::TargetedRefresh,
        }
    }

    /// The cube on which the event was raised (its primary locality).
    pub fn cube(&self) -> CubeId {
        match *self {
            TraceEvent::BankConflict { cube, .. }
            | TraceEvent::XbarRqstStall { cube, .. }
            | TraceEvent::XbarRspStall { cube, .. }
            | TraceEvent::VaultRspStall { cube, .. }
            | TraceEvent::RouteLatency { cube, .. }
            | TraceEvent::Misroute { cube, .. }
            | TraceEvent::Zombie { cube, .. }
            | TraceEvent::ReadComplete { cube, .. }
            | TraceEvent::WriteComplete { cube, .. }
            | TraceEvent::AtomicComplete { cube, .. }
            | TraceEvent::ModeAccess { cube, .. }
            | TraceEvent::Forwarded { cube, .. }
            | TraceEvent::TokenReturn { cube, .. }
            | TraceEvent::ErrorResponse { cube, .. }
            | TraceEvent::LinkRetry { cube, .. }
            | TraceEvent::LinkDown { cube, .. }
            | TraceEvent::LinkRetrain { cube, .. }
            | TraceEvent::PoisonedResponse { cube, .. }
            | TraceEvent::RowHit { cube, .. }
            | TraceEvent::RowMiss { cube, .. }
            | TraceEvent::Precharge { cube, .. }
            | TraceEvent::NocHop { cube, .. }
            | TraceEvent::NocStall { cube, .. }
            | TraceEvent::RowHammerFlip { cube, .. }
            | TraceEvent::TargetedRefresh { cube, .. } => cube,
        }
    }

    /// The vault locality of the event, when it has one.
    pub fn vault(&self) -> Option<VaultId> {
        match *self {
            TraceEvent::BankConflict { vault, .. }
            | TraceEvent::XbarRqstStall { vault, .. }
            | TraceEvent::VaultRspStall { vault, .. }
            | TraceEvent::RouteLatency { vault, .. }
            | TraceEvent::ReadComplete { vault, .. }
            | TraceEvent::WriteComplete { vault, .. }
            | TraceEvent::AtomicComplete { vault, .. }
            | TraceEvent::RowHit { vault, .. }
            | TraceEvent::RowMiss { vault, .. }
            | TraceEvent::Precharge { vault, .. }
            | TraceEvent::RowHammerFlip { vault, .. }
            | TraceEvent::TargetedRefresh { vault, .. } => Some(vault),
            _ => None,
        }
    }
}

/// A trace event stamped with the clock tick at which it was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Internal clock value when the event was raised (§IV.E).
    pub cycle: Cycle,
    /// The event and its locality.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Render the record as a single text trace line.
    pub fn to_line(&self) -> String {
        let k = self.event.kind().label();
        match self.event {
            TraceEvent::BankConflict {
                cube,
                vault,
                bank,
                addr,
                tag,
            } => format!(
                "{cycle} {k} cube={cube} vault={vault} bank={bank} addr={addr:#x} tag={tag}",
                cycle = self.cycle
            ),
            TraceEvent::XbarRqstStall {
                cube,
                link,
                vault,
                tag,
            } => format!(
                "{cycle} {k} cube={cube} link={link} vault={vault} tag={tag}",
                cycle = self.cycle
            ),
            TraceEvent::XbarRspStall { cube, link, tag } => {
                format!("{} {k} cube={cube} link={link} tag={tag}", self.cycle)
            }
            TraceEvent::VaultRspStall { cube, vault, tag } => {
                format!("{} {k} cube={cube} vault={vault} tag={tag}", self.cycle)
            }
            TraceEvent::RouteLatency {
                cube,
                link,
                arrival_quad,
                dest_quad,
                vault,
                tag,
            } => format!(
                "{} {k} cube={cube} link={link} arrival_quad={arrival_quad} \
                 dest_quad={dest_quad} vault={vault} tag={tag}",
                self.cycle
            ),
            TraceEvent::Misroute {
                cube,
                link,
                dest_cube,
                tag,
            } => format!(
                "{} {k} cube={cube} link={link} dest_cube={dest_cube} tag={tag}",
                self.cycle
            ),
            TraceEvent::Zombie { cube, tag, hops } => {
                format!("{} {k} cube={cube} tag={tag} hops={hops}", self.cycle)
            }
            TraceEvent::ReadComplete {
                cube,
                vault,
                bank,
                bytes,
                tag,
            }
            | TraceEvent::WriteComplete {
                cube,
                vault,
                bank,
                bytes,
                tag,
            } => format!(
                "{} {k} cube={cube} vault={vault} bank={bank} bytes={bytes} tag={tag}",
                self.cycle
            ),
            TraceEvent::AtomicComplete {
                cube,
                vault,
                bank,
                tag,
            } => format!(
                "{} {k} cube={cube} vault={vault} bank={bank} tag={tag}",
                self.cycle
            ),
            TraceEvent::ModeAccess {
                cube,
                reg,
                write,
                tag,
            } => format!(
                "{} {k} cube={cube} reg={reg:#x} write={write} tag={tag}",
                self.cycle
            ),
            TraceEvent::Forwarded {
                cube,
                link,
                next_cube,
                dest_cube,
                tag,
            } => format!(
                "{} {k} cube={cube} link={link} next={next_cube} dest={dest_cube} tag={tag}",
                self.cycle
            ),
            TraceEvent::TokenReturn { cube, link, tokens } => {
                format!("{} {k} cube={cube} link={link} tokens={tokens}", self.cycle)
            }
            TraceEvent::ErrorResponse { cube, tag, status } => {
                format!("{} {k} cube={cube} tag={tag} status={status}", self.cycle)
            }
            TraceEvent::LinkRetry { cube, link, tag }
            | TraceEvent::PoisonedResponse { cube, link, tag } => {
                format!("{} {k} cube={cube} link={link} tag={tag}", self.cycle)
            }
            TraceEvent::LinkDown {
                cube,
                link,
                tag,
                attempts,
            } => format!(
                "{} {k} cube={cube} link={link} tag={tag} attempts={attempts}",
                self.cycle
            ),
            TraceEvent::LinkRetrain { cube, link } => {
                format!("{} {k} cube={cube} link={link}", self.cycle)
            }
            TraceEvent::RowHit {
                cube,
                vault,
                bank,
                row,
                tag,
            }
            | TraceEvent::RowMiss {
                cube,
                vault,
                bank,
                row,
                tag,
            } => format!(
                "{} {k} cube={cube} vault={vault} bank={bank} row={row} tag={tag}",
                self.cycle
            ),
            TraceEvent::Precharge {
                cube,
                vault,
                bank,
                tag,
            } => format!(
                "{} {k} cube={cube} vault={vault} bank={bank} tag={tag}",
                self.cycle
            ),
            TraceEvent::NocHop {
                cube,
                from_quad,
                to_quad,
                tag,
            } => format!(
                "{} {k} cube={cube} from_quad={from_quad} to_quad={to_quad} tag={tag}",
                self.cycle
            ),
            TraceEvent::NocStall { cube, quad, tag } => {
                format!("{} {k} cube={cube} quad={quad} tag={tag}", self.cycle)
            }
            TraceEvent::RowHammerFlip {
                cube,
                vault,
                bank,
                row,
                bits,
            } => format!(
                "{} {k} cube={cube} vault={vault} bank={bank} row={row} bits={bits}",
                self.cycle
            ),
            TraceEvent::TargetedRefresh {
                cube,
                vault,
                bank,
                row,
            } => format!(
                "{} {k} cube={cube} vault={vault} bank={bank} row={row}",
                self.cycle
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_dense_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(seen.insert(*k));
        }
        assert_eq!(seen.len(), EventKind::ALL.len());
    }

    #[test]
    fn event_kind_dispatch_is_total() {
        let events = [
            TraceEvent::BankConflict {
                cube: 0,
                vault: 1,
                bank: 2,
                addr: 0x40,
                tag: 3,
            },
            TraceEvent::XbarRqstStall {
                cube: 0,
                link: 1,
                vault: 2,
                tag: 3,
            },
            TraceEvent::RouteLatency {
                cube: 0,
                link: 0,
                arrival_quad: 0,
                dest_quad: 1,
                vault: 5,
                tag: 9,
            },
            TraceEvent::Zombie {
                cube: 1,
                tag: 2,
                hops: 99,
            },
        ];
        assert_eq!(events[0].kind(), EventKind::BankConflict);
        assert_eq!(events[1].kind(), EventKind::XbarRqstStall);
        assert_eq!(events[2].kind(), EventKind::RouteLatency);
        assert_eq!(events[3].kind(), EventKind::Zombie);
    }

    #[test]
    fn locality_accessors() {
        let e = TraceEvent::ReadComplete {
            cube: 3,
            vault: 7,
            bank: 1,
            bytes: 64,
            tag: 12,
        };
        assert_eq!(e.cube(), 3);
        assert_eq!(e.vault(), Some(7));
        let e = TraceEvent::TokenReturn {
            cube: 2,
            link: 0,
            tokens: 4,
        };
        assert_eq!(e.cube(), 2);
        assert_eq!(e.vault(), None);
    }

    #[test]
    fn trace_lines_carry_cycle_and_locality() {
        let r = TraceRecord {
            cycle: 1234,
            event: TraceEvent::BankConflict {
                cube: 0,
                vault: 5,
                bank: 3,
                addr: 0x1000,
                tag: 42,
            },
        };
        let line = r.to_line();
        assert!(line.starts_with("1234 BANK_CONFLICT"));
        assert!(line.contains("vault=5"));
        assert!(line.contains("bank=3"));
        assert!(line.contains("addr=0x1000"));
        assert!(line.contains("tag=42"));
    }

    #[test]
    fn every_event_renders_a_line() {
        let samples = [
            TraceEvent::BankConflict { cube: 0, vault: 0, bank: 0, addr: 0, tag: 0 },
            TraceEvent::XbarRqstStall { cube: 0, link: 0, vault: 0, tag: 0 },
            TraceEvent::XbarRspStall { cube: 0, link: 0, tag: 0 },
            TraceEvent::VaultRspStall { cube: 0, vault: 0, tag: 0 },
            TraceEvent::RouteLatency {
                cube: 0, link: 0, arrival_quad: 0, dest_quad: 0, vault: 0, tag: 0,
            },
            TraceEvent::Misroute { cube: 0, link: 0, dest_cube: 0, tag: 0 },
            TraceEvent::Zombie { cube: 0, tag: 0, hops: 0 },
            TraceEvent::ReadComplete { cube: 0, vault: 0, bank: 0, bytes: 0, tag: 0 },
            TraceEvent::WriteComplete { cube: 0, vault: 0, bank: 0, bytes: 0, tag: 0 },
            TraceEvent::AtomicComplete { cube: 0, vault: 0, bank: 0, tag: 0 },
            TraceEvent::ModeAccess { cube: 0, reg: 0, write: false, tag: 0 },
            TraceEvent::Forwarded { cube: 0, link: 0, next_cube: 0, dest_cube: 0, tag: 0 },
            TraceEvent::TokenReturn { cube: 0, link: 0, tokens: 0 },
            TraceEvent::ErrorResponse { cube: 0, tag: 0, status: 0 },
            TraceEvent::LinkRetry { cube: 0, link: 0, tag: 0 },
            TraceEvent::LinkDown { cube: 0, link: 0, tag: 0, attempts: 0 },
            TraceEvent::LinkRetrain { cube: 0, link: 0 },
            TraceEvent::PoisonedResponse { cube: 0, link: 0, tag: 0 },
            TraceEvent::RowHit { cube: 0, vault: 0, bank: 0, row: 0, tag: 0 },
            TraceEvent::RowMiss { cube: 0, vault: 0, bank: 0, row: 0, tag: 0 },
            TraceEvent::Precharge { cube: 0, vault: 0, bank: 0, tag: 0 },
            TraceEvent::NocHop { cube: 0, from_quad: 0, to_quad: 0, tag: 0 },
            TraceEvent::NocStall { cube: 0, quad: 0, tag: 0 },
            TraceEvent::RowHammerFlip { cube: 0, vault: 0, bank: 0, row: 0, bits: 0 },
            TraceEvent::TargetedRefresh { cube: 0, vault: 0, bank: 0, row: 0 },
        ];
        for (i, e) in samples.iter().enumerate() {
            let line = TraceRecord { cycle: i as u64, event: *e }.to_line();
            assert!(
                line.contains(e.kind().label()),
                "line for {e:?} must carry its kind label"
            );
        }
        // The sample list covers every kind.
        let kinds: std::collections::HashSet<_> = samples.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), EventKind::ALL.len());
    }
}
