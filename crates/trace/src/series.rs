//! Per-cycle time series for the paper's Figure 5.
//!
//! Figure 5 plots, per simulated clock cycle, "the number of bank
//! conflicts, read requests and write requests that occurred within each
//! vault … the number of crossbar request stalls observed internal to the
//! device and the number of events raised due to the potential routed
//! latency penalties" (paper §VI.B).
//!
//! A raw per-cycle, per-vault trace of a 3.4-million-cycle run is the
//! 16–40 GB file the paper mentions; [`SeriesCollector`] aggregates the
//! same five quantities online into fixed-width cycle bins (bin width 1
//! reproduces the raw series for short runs), plus whole-run per-vault
//! utilization tallies.

use std::io::Write;

use serde::Serialize;

use crate::event::{EventKind, TraceRecord};
use crate::sink::TraceSink;
use crate::stats::VaultUtilization;
use hmc_types::Cycle;

/// One bin (row) of the Figure 5 series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct SeriesRow {
    /// First cycle covered by the bin.
    pub cycle: Cycle,
    /// Bank conflicts recognized in the bin (all vaults).
    pub bank_conflicts: u64,
    /// Read requests completed in the bin.
    pub reads: u64,
    /// Write requests completed in the bin.
    pub writes: u64,
    /// Crossbar request stalls in the bin.
    pub xbar_stalls: u64,
    /// Routed-latency penalty events in the bin.
    pub latency_events: u64,
}

/// Online collector of the Figure 5 quantities.
///
/// # Examples
///
/// ```
/// use hmc_trace::{SeriesCollector, TraceEvent, TraceRecord, TraceSink};
///
/// let mut series = SeriesCollector::new(10, 16);
/// series.record(&TraceRecord {
///     cycle: 25,
///     event: TraceEvent::ReadComplete { cube: 0, vault: 3, bank: 1, bytes: 64, tag: 7 },
/// });
/// assert_eq!(series.rows()[2].reads, 1, "cycle 25 lands in the third bin");
/// assert_eq!(series.vaults().reads[3], 1);
/// ```
#[derive(Debug)]
pub struct SeriesCollector {
    bin_width: Cycle,
    rows: Vec<SeriesRow>,
    vaults: VaultUtilization,
}

impl SeriesCollector {
    /// Collect with the given cycle bin width over `num_vaults` vaults.
    ///
    /// # Panics
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: Cycle, num_vaults: u16) -> Self {
        assert!(bin_width > 0, "bin width must be nonzero");
        SeriesCollector {
            bin_width,
            rows: Vec::new(),
            vaults: VaultUtilization::new(num_vaults),
        }
    }

    /// Bin width in cycles.
    pub fn bin_width(&self) -> Cycle {
        self.bin_width
    }

    /// The collected rows.
    pub fn rows(&self) -> &[SeriesRow] {
        &self.rows
    }

    /// Whole-run per-vault utilization.
    pub fn vaults(&self) -> &VaultUtilization {
        &self.vaults
    }

    fn row_for(&mut self, cycle: Cycle) -> &mut SeriesRow {
        let idx = (cycle / self.bin_width) as usize;
        if idx >= self.rows.len() {
            let old_len = self.rows.len();
            self.rows.resize_with(idx + 1, SeriesRow::default);
            for (i, row) in self.rows.iter_mut().enumerate().skip(old_len) {
                row.cycle = i as Cycle * self.bin_width;
            }
        }
        &mut self.rows[idx]
    }

    /// Write the series as CSV (`cycle,bank_conflicts,reads,writes,
    /// xbar_stalls,latency_events`).
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(
            w,
            "cycle,bank_conflicts,reads,writes,xbar_stalls,latency_events"
        )?;
        for r in &self.rows {
            writeln!(
                w,
                "{},{},{},{},{},{}",
                r.cycle, r.bank_conflicts, r.reads, r.writes, r.xbar_stalls, r.latency_events
            )?;
        }
        Ok(())
    }

    /// Column totals across all bins.
    pub fn totals(&self) -> SeriesRow {
        let mut t = SeriesRow::default();
        for r in &self.rows {
            t.bank_conflicts += r.bank_conflicts;
            t.reads += r.reads;
            t.writes += r.writes;
            t.xbar_stalls += r.xbar_stalls;
            t.latency_events += r.latency_events;
        }
        t
    }

    /// The bin with the most bank conflicts (peak of Figure 5's top curve).
    pub fn peak_conflict_bin(&self) -> Option<SeriesRow> {
        self.rows.iter().copied().max_by_key(|r| r.bank_conflicts)
    }
}

impl TraceSink for SeriesCollector {
    fn record(&mut self, rec: &TraceRecord) {
        self.vaults.observe(&rec.event);
        let row = self.row_for(rec.cycle);
        match rec.event.kind() {
            EventKind::BankConflict => row.bank_conflicts += 1,
            EventKind::ReadComplete => row.reads += 1,
            EventKind::WriteComplete => row.writes += 1,
            EventKind::XbarRqstStall => row.xbar_stalls += 1,
            EventKind::RouteLatency => row.latency_events += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(cycle: Cycle, event: TraceEvent) -> TraceRecord {
        TraceRecord { cycle, event }
    }

    fn read(vault: u16) -> TraceEvent {
        TraceEvent::ReadComplete {
            cube: 0,
            vault,
            bank: 0,
            bytes: 64,
            tag: 0,
        }
    }

    fn conflict(vault: u16) -> TraceEvent {
        TraceEvent::BankConflict {
            cube: 0,
            vault,
            bank: 0,
            addr: 0,
            tag: 0,
        }
    }

    #[test]
    fn unit_bins_reproduce_per_cycle_series() {
        let mut s = SeriesCollector::new(1, 16);
        s.record(&rec(0, read(0)));
        s.record(&rec(0, read(1)));
        s.record(&rec(2, conflict(0)));
        assert_eq!(s.rows().len(), 3);
        assert_eq!(s.rows()[0].reads, 2);
        assert_eq!(s.rows()[1].reads, 0);
        assert_eq!(s.rows()[2].bank_conflicts, 1);
        assert_eq!(s.rows()[1].cycle, 1);
    }

    #[test]
    fn wide_bins_aggregate() {
        let mut s = SeriesCollector::new(10, 16);
        for c in 0..25 {
            s.record(&rec(c, read(0)));
        }
        assert_eq!(s.rows().len(), 3);
        assert_eq!(s.rows()[0].reads, 10);
        assert_eq!(s.rows()[1].reads, 10);
        assert_eq!(s.rows()[2].reads, 5);
        assert_eq!(s.rows()[2].cycle, 20);
    }

    #[test]
    fn all_five_figure5_quantities_are_tracked() {
        let mut s = SeriesCollector::new(1, 16);
        s.record(&rec(0, conflict(0)));
        s.record(&rec(0, read(0)));
        s.record(&rec(
            0,
            TraceEvent::WriteComplete {
                cube: 0,
                vault: 0,
                bank: 0,
                bytes: 64,
                tag: 0,
            },
        ));
        s.record(&rec(
            0,
            TraceEvent::XbarRqstStall {
                cube: 0,
                link: 0,
                vault: 0,
                tag: 0,
            },
        ));
        s.record(&rec(
            0,
            TraceEvent::RouteLatency {
                cube: 0,
                link: 0,
                arrival_quad: 0,
                dest_quad: 1,
                vault: 4,
                tag: 0,
            },
        ));
        let r = s.rows()[0];
        assert_eq!(r.bank_conflicts, 1);
        assert_eq!(r.reads, 1);
        assert_eq!(r.writes, 1);
        assert_eq!(r.xbar_stalls, 1);
        assert_eq!(r.latency_events, 1);
    }

    #[test]
    fn irrelevant_events_do_not_pollute_rows() {
        let mut s = SeriesCollector::new(1, 16);
        s.record(&rec(
            0,
            TraceEvent::TokenReturn {
                cube: 0,
                link: 0,
                tokens: 1,
            },
        ));
        assert_eq!(s.rows()[0], SeriesRow::default());
    }

    #[test]
    fn per_vault_tallies_accumulate() {
        let mut s = SeriesCollector::new(100, 4);
        s.record(&rec(5, read(3)));
        s.record(&rec(6, read(3)));
        s.record(&rec(7, conflict(2)));
        assert_eq!(s.vaults().reads[3], 2);
        assert_eq!(s.vaults().conflicts[2], 1);
    }

    #[test]
    fn csv_output_is_well_formed() {
        let mut s = SeriesCollector::new(1, 16);
        s.record(&rec(0, read(0)));
        s.record(&rec(1, conflict(0)));
        let mut buf = Vec::new();
        s.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "cycle,bank_conflicts,reads,writes,xbar_stalls,latency_events"
        );
        assert_eq!(lines[1], "0,0,1,0,0,0");
        assert_eq!(lines[2], "1,1,0,0,0,0");
    }

    #[test]
    fn totals_and_peaks() {
        let mut s = SeriesCollector::new(1, 16);
        s.record(&rec(0, conflict(0)));
        s.record(&rec(1, conflict(0)));
        s.record(&rec(1, conflict(1)));
        s.record(&rec(2, read(0)));
        let t = s.totals();
        assert_eq!(t.bank_conflicts, 3);
        assert_eq!(t.reads, 1);
        let peak = s.peak_conflict_bin().unwrap();
        assert_eq!(peak.cycle, 1);
        assert_eq!(peak.bank_conflicts, 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bin_width_rejected() {
        SeriesCollector::new(0, 16);
    }
}
