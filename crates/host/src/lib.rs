//! # hmc-host
//!
//! The host-processor side of an HMC-Sim experiment: 9-bit tag management
//! with out-of-order response correlation, round-robin and locality-aware
//! link selection, and the inject-until-stall run loop of the paper's
//! §VI.A random-access test harness. Runs report simulated cycles — the
//! Table I metric — plus latency distributions and stall counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod host;
pub mod tags;

pub use driver::{
    run_workload, run_workload_captured, run_workload_with_progress, RunConfig, RunReport,
};
pub use host::{Host, HostStats, LatencyStats, LinkSelection};
pub use tags::{Pending, TagPool, NUM_TAGS};
