//! The inject-until-stall run loop.
//!
//! Reproduces the control flow of the paper's random-access test
//! application (§VI.A): each cycle the host sends as many requests as the
//! device accepts, clocks the simulation once, and drains responses; the
//! run completes when the workload is exhausted and every response has
//! returned. The report carries the simulated runtime in clock cycles —
//! the quantity Table I compares across device configurations.

use hmc_core::builder::TimedResponse;
use hmc_core::HmcSim;
use hmc_types::{CubeId, Cycle, HmcError, Result};
use hmc_workloads::{MemOp, Workload};

use crate::host::Host;

/// Driver options.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Device the workload targets.
    pub target_cube: CubeId,
    /// Abort the run if it exceeds this many cycles (deadlock guard).
    pub max_cycles: u64,
    /// Progress callback interval in cycles (0 = no callbacks).
    pub progress_every: u64,
    /// Enable the engine's protocol invariant checker for the run
    /// (`SimParams::check_invariants`); violations found are counted in
    /// [`RunReport::invariant_violations`].
    pub check_invariants: bool,
    /// Arm the engine's event-driven fast-forward mode for the run
    /// (`SimParams::fast_forward`). The driver's own loop steps
    /// cycle-by-cycle — its inject/drain granularity *is* the schedule —
    /// so the mode only pays off for callers that batch-clock the same
    /// sim before or after the run (bench harnesses, serve pumps).
    /// Reports are bit-identical either way.
    pub fast_forward: bool,
    /// Select the vault timing backend for the run
    /// (`SimParams::timing`). `None` leaves whatever backend the sim
    /// already has — the classic constant-time model unless the caller
    /// chose otherwise.
    pub timing: Option<hmc_core::TimingParams>,
    /// Select the intra-cube interconnect fabric for the run
    /// (`SimParams::interconnect`). `None` leaves whatever fabric the
    /// sim already has — the direct crossbar unless the caller chose
    /// otherwise.
    pub interconnect: Option<hmc_core::NocParams>,
    /// Enable cell-level fault injection for the run
    /// (`SimParams::cell_faults`): RowHammer disturbance and retention
    /// decay. `None` leaves whatever the sim already has — off unless
    /// the caller chose otherwise.
    pub cell_faults: Option<hmc_types::CellFaultConfig>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            target_cube: 0,
            max_cycles: 1 << 34,
            progress_every: 0,
            check_invariants: false,
            fast_forward: false,
            timing: None,
            interconnect: None,
            cell_faults: None,
        }
    }
}

/// The outcome of a workload run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Simulated runtime in clock cycles (the Table I metric).
    pub cycles: Cycle,
    /// Requests accepted by the device.
    pub injected: u64,
    /// Responses received and correlated.
    pub completed: u64,
    /// Posted requests (fire-and-forget).
    pub posted: u64,
    /// Error responses observed.
    pub errors: u64,
    /// Send attempts that stalled.
    pub send_stalls: u64,
    /// Mean request latency in cycles.
    pub mean_latency: f64,
    /// Maximum request latency in cycles.
    pub max_latency: Cycle,
    /// Requests per cycle (throughput).
    pub throughput: f64,
    /// Protocol invariant violations observed (always zero unless
    /// [`RunConfig::check_invariants`] was set).
    pub invariant_violations: u64,
}

/// Run `workload` to completion through `host` against `sim`.
///
/// Returns the run report; fails with [`HmcError::Internal`] if the run
/// exceeds `max_cycles` (a deadlocked or misconfigured topology).
pub fn run_workload<W: Workload + ?Sized>(
    sim: &mut HmcSim,
    host: &mut Host,
    workload: &mut W,
    cfg: RunConfig,
) -> Result<RunReport> {
    run_workload_with_progress(sim, host, workload, cfg, |_, _| {})
}

/// [`run_workload`] that also captures every correlated response in the
/// exact order it came off the links.
///
/// This is the in-process reference for the serving path's differential
/// check: the same workload run through a loopback `hmc-serve` session
/// must produce a bit-identical response sequence (tag, data, order).
pub fn run_workload_captured<W: Workload + ?Sized>(
    sim: &mut HmcSim,
    host: &mut Host,
    workload: &mut W,
    cfg: RunConfig,
) -> Result<(RunReport, Vec<TimedResponse>)> {
    let mut captured = Vec::new();
    let report = run_loop(sim, host, workload, cfg, |_, _| {}, Some(&mut captured))?;
    Ok((report, captured))
}

/// [`run_workload`] with a progress callback `(cycles_elapsed, injected)`,
/// invoked every `cfg.progress_every` cycles.
pub fn run_workload_with_progress<W, F>(
    sim: &mut HmcSim,
    host: &mut Host,
    workload: &mut W,
    cfg: RunConfig,
    progress: F,
) -> Result<RunReport>
where
    W: Workload + ?Sized,
    F: FnMut(Cycle, u64),
{
    run_loop(sim, host, workload, cfg, progress, None)
}

fn run_loop<W, F>(
    sim: &mut HmcSim,
    host: &mut Host,
    workload: &mut W,
    cfg: RunConfig,
    mut progress: F,
    mut capture: Option<&mut Vec<TimedResponse>>,
) -> Result<RunReport>
where
    W: Workload + ?Sized,
    F: FnMut(Cycle, u64),
{
    if cfg.check_invariants {
        sim.set_check_invariants(true);
    }
    if cfg.fast_forward {
        sim.set_fast_forward(true);
    }
    if let Some(timing) = cfg.timing {
        sim.set_timing(timing);
    }
    if let Some(noc) = cfg.interconnect {
        sim.set_interconnect(noc);
    }
    if cfg.cell_faults.is_some() {
        sim.set_cell_faults(cfg.cell_faults);
    }
    let start_violations = sim.total_invariant_violations();
    let start_cycle = sim.current_clock();
    let start_stats = host.stats;
    let mut pending: Option<MemOp> = None;
    let mut exhausted = false;

    loop {
        // Inject until a stall, tag exhaustion, or workload end.
        loop {
            let op = match pending.take() {
                Some(op) => op,
                None => match workload.next_op() {
                    Some(op) => op,
                    None => {
                        exhausted = true;
                        break;
                    }
                },
            };
            if host.try_issue(sim, cfg.target_cube, &op)? {
                continue;
            }
            pending = Some(op);
            break;
        }

        sim.clock()?;
        match capture {
            Some(ref mut sink) => {
                host.drain_with(sim, |info, latency| {
                    sink.push(TimedResponse { info, latency })
                })?;
            }
            None => {
                host.drain(sim)?;
            }
        }

        let elapsed = sim.current_clock() - start_cycle;
        if cfg.progress_every > 0 && elapsed.is_multiple_of(cfg.progress_every) {
            progress(elapsed, host.stats.injected - start_stats.injected);
        }

        if exhausted && pending.is_none() && host.outstanding() == 0 {
            // Posted traffic may still be in flight inside the device;
            // drain it so back-to-back runs start clean.
            // (Posted responses never correlate, so the capture sink is
            // not needed here — but keep the schedule identical anyway.)
            let mut settle = 0u32;
            while !sim.is_idle() && settle < 10_000 {
                sim.clock()?;
                host.drain(sim)?;
                settle += 1;
            }
            break;
        }
        if elapsed > cfg.max_cycles {
            return Err(HmcError::Internal(format!(
                "workload run exceeded {} cycles with {} requests outstanding \
                 (deadlock or unreachable topology?)",
                cfg.max_cycles,
                host.outstanding()
            )));
        }
    }

    let cycles = sim.current_clock() - start_cycle;
    let injected = host.stats.injected - start_stats.injected;
    let completed = host.stats.completed - start_stats.completed;
    Ok(RunReport {
        cycles,
        injected,
        completed,
        posted: host.stats.posted - start_stats.posted,
        errors: host.stats.errors - start_stats.errors,
        send_stalls: host.stats.send_stalls - start_stats.send_stalls,
        mean_latency: host.latency.mean(),
        max_latency: host.latency.max,
        throughput: if cycles > 0 {
            injected as f64 / cycles as f64
        } else {
            0.0
        },
        invariant_violations: sim.total_invariant_violations() - start_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_core::topology;
    use hmc_types::{BlockSize, DeviceConfig};
    use hmc_workloads::{RandomAccess, Stream, StreamMode};

    fn sim() -> HmcSim {
        let mut s = HmcSim::new(
            1,
            DeviceConfig::small().with_queue_depths(32, 16),
        )
        .unwrap();
        let host = s.host_cube_id(0);
        topology::build_simple(&mut s, host).unwrap();
        s
    }

    #[test]
    fn random_workload_runs_to_completion() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w = RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 2_000);
        let report = run_workload(&mut s, &mut h, &mut w, RunConfig::default()).unwrap();
        assert_eq!(report.injected, 2_000);
        assert_eq!(report.completed, 2_000);
        assert_eq!(report.errors, 0);
        assert!(report.cycles > 0);
        assert!(report.throughput > 0.0);
        assert!(s.is_idle(), "run must drain the device");
    }

    #[test]
    fn stream_workload_runs_to_completion() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w = Stream::unit(1 << 20, BlockSize::B64, StreamMode::Copy, 1_000);
        let report = run_workload(&mut s, &mut h, &mut w, RunConfig::default()).unwrap();
        assert_eq!(report.completed, 1_000);
        assert!(report.mean_latency >= 1.0);
        assert!(report.max_latency >= 1);
    }

    #[test]
    fn max_cycles_guard_fires() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w = RandomAccess::new(1, 1 << 24, BlockSize::B64, 50, 100_000);
        let cfg = RunConfig {
            max_cycles: 10,
            ..RunConfig::default()
        };
        assert!(matches!(
            run_workload(&mut s, &mut h, &mut w, cfg),
            Err(HmcError::Internal(_))
        ));
    }

    #[test]
    fn progress_callback_is_invoked() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w = RandomAccess::new(2, 1 << 24, BlockSize::B64, 50, 3_000);
        let mut calls = 0;
        let cfg = RunConfig {
            progress_every: 10,
            ..RunConfig::default()
        };
        run_workload_with_progress(&mut s, &mut h, &mut w, cfg, |_, _| calls += 1).unwrap();
        assert!(calls > 0);
    }

    #[test]
    fn captured_run_matches_the_plain_run() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w = RandomAccess::new(7, 1 << 24, BlockSize::B64, 50, 800);
        let (report, captured) =
            run_workload_captured(&mut s, &mut h, &mut w, RunConfig::default()).unwrap();
        assert_eq!(captured.len() as u64, report.completed);
        // Same seed through the plain runner: identical report, and the
        // capture must not have perturbed the schedule.
        s.reset();
        let mut h2 = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w2 = RandomAccess::new(7, 1 << 24, BlockSize::B64, 50, 800);
        let plain = run_workload(&mut s, &mut h2, &mut w2, RunConfig::default()).unwrap();
        assert_eq!(report, plain);
    }

    #[test]
    fn fast_forward_runs_produce_identical_reports() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w = RandomAccess::new(11, 1 << 24, BlockSize::B64, 50, 1_200);
        let stepped = run_workload(&mut s, &mut h, &mut w, RunConfig::default()).unwrap();

        s.reset();
        let mut h2 = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w2 = RandomAccess::new(11, 1 << 24, BlockSize::B64, 50, 1_200);
        let cfg = RunConfig {
            fast_forward: true,
            ..RunConfig::default()
        };
        let fast = run_workload(&mut s, &mut h2, &mut w2, cfg).unwrap();
        assert!(s.fast_forward(), "the run must arm the engine mode");
        assert_eq!(stepped, fast);
    }

    #[test]
    fn back_to_back_runs_are_independent() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut w1 = RandomAccess::new(3, 1 << 24, BlockSize::B64, 50, 500);
        let r1 = run_workload(&mut s, &mut h, &mut w1, RunConfig::default()).unwrap();
        let mut w2 = RandomAccess::new(3, 1 << 24, BlockSize::B64, 50, 500);
        let r2 = run_workload(&mut s, &mut h, &mut w2, RunConfig::default()).unwrap();
        assert_eq!(r1.injected, r2.injected);
        assert_eq!(r1.completed, 500);
        assert_eq!(r2.completed, 500);
    }
}
