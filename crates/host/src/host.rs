//! The host processor model.
//!
//! The paper's test application "will send as many memory requests as
//! possible to the target device or devices until an appropriate stall is
//! received indicating that the crossbar arbitration queues are full. The
//! application selects appropriate HMC links in a simple round-robin
//! fashion in order to naively balance the traffic across all possible
//! injection points" (§VI.A).
//!
//! [`Host`] implements that injector — plus the locality-aware variant the
//! paper's §VI.B corollary motivates ("locality-aware host devices have
//! the potential to reduce memory latency and reduce internal memory
//! device contention").

use hmc_core::builder::{decode_response, ResponseInfo};
use hmc_core::HmcSim;
use hmc_types::{CubeId, Cycle, HmcError, LinkId, Packet, PhysAddr, Result};
use hmc_workloads::MemOp;

use crate::tags::{Pending, TagPool};

/// How the host picks an injection link for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelection {
    /// Simple round-robin over all host links (the paper's harness).
    RoundRobin,
    /// Prefer the link co-located with the destination vault's quad,
    /// falling back to round-robin when that port is stalled.
    LocalityAware,
}

/// Latency histogram over power-of-two buckets.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    /// `buckets[i]` counts latencies in `[2^i, 2^(i+1))` (bucket 0: 0–1).
    pub buckets: [u64; 24],
    /// Total responses observed.
    pub count: u64,
    /// Sum of latencies (average computation).
    pub sum: u64,
    /// Maximum observed latency.
    pub max: Cycle,
}

impl LatencyStats {
    /// Record one latency observation.
    pub fn record(&mut self, latency: Cycle) {
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(23);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Mean latency in cycles.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Host-side operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Requests accepted by the device.
    pub injected: u64,
    /// Responses received and correlated.
    pub completed: u64,
    /// Posted requests injected (no response expected).
    pub posted: u64,
    /// Error responses received.
    pub errors: u64,
    /// Responses delivered with a poisoned ERRSTAT — the device gave up
    /// on the request after exhausting the link-retry protocol. A subset
    /// of `errors`.
    pub poisoned: u64,
    /// Send attempts rejected with a stall.
    pub send_stalls: u64,
    /// Injection attempts deferred because all 512 tags were in flight.
    pub tag_stalls: u64,
    /// Responses whose tag could not be correlated.
    pub orphans: u64,
}

/// A host processor attached to one or more host links.
#[derive(Debug)]
pub struct Host {
    /// This host's cube ID.
    pub cube_id: CubeId,
    ports: Vec<(CubeId, LinkId)>,
    rr: usize,
    selection: LinkSelection,
    tags: TagPool,
    /// Operation counters.
    pub stats: HostStats,
    /// Request-to-response latency distribution.
    pub latency: LatencyStats,
    scratch: Vec<u8>,
}

impl Host {
    /// Discover this host's links from the simulation topology.
    pub fn attach(sim: &HmcSim, cube_id: CubeId) -> Result<Self> {
        let mut ports = Vec::new();
        for dev in 0..sim.num_devices() {
            let d = sim.device(dev)?;
            for link in &d.links {
                if link.remote == hmc_core::Endpoint::Host(cube_id) {
                    ports.push((dev, link.id));
                }
            }
        }
        if ports.is_empty() {
            return Err(HmcError::Topology(format!(
                "host {cube_id} has no links in this topology"
            )));
        }
        Ok(Host {
            cube_id,
            ports,
            rr: 0,
            selection: LinkSelection::RoundRobin,
            tags: TagPool::new(),
            stats: HostStats::default(),
            latency: LatencyStats::default(),
            scratch: vec![0u8; 128],
        })
    }

    /// Switch the link-selection policy (builder style).
    pub fn with_selection(mut self, selection: LinkSelection) -> Self {
        self.selection = selection;
        self
    }

    /// The host's injection ports as `(device, link)` pairs.
    pub fn ports(&self) -> &[(CubeId, LinkId)] {
        &self.ports
    }

    /// Requests currently awaiting responses.
    pub fn outstanding(&self) -> usize {
        self.tags.outstanding()
    }

    fn write_payload(&mut self, op: &MemOp) -> usize {
        let n = op.payload_bytes();
        // A recognizable deterministic pattern derived from the address.
        let seed = op.addr as u8;
        for (i, b) in self.scratch[..n].iter_mut().enumerate() {
            *b = seed.wrapping_add(i as u8);
        }
        n
    }

    /// Port visit order for one issue, allocation-free (hot path: this
    /// runs once per injected request — 33.5M times in a Table I run).
    fn pick_ports(&self, sim: &HmcSim, target: CubeId, op: &MemOp) -> ([usize; 8], usize) {
        let n = self.ports.len().min(8);
        let mut order = [0usize; 8];
        for (i, slot) in order.iter_mut().enumerate().take(n) {
            *slot = (self.rr + i) % n;
        }
        if self.selection == LinkSelection::LocalityAware {
            // Put the port whose link index matches the destination quad
            // (link i is closest to quad i) and device first.
            if let Ok(decoded) = PhysAddr::new(op.addr).and_then(|a| sim.address_map().decode(a))
            {
                let quad = (decoded.vault / 4) as LinkId;
                if let Some(pos) = order[..n]
                    .iter()
                    .position(|&i| self.ports[i] == (target, quad))
                {
                    order[..=pos].rotate_right(1);
                }
            }
        }
        (order, n)
    }

    /// Try to inject one operation toward device `target`.
    ///
    /// Returns `Ok(true)` when the request was accepted, `Ok(false)` when
    /// every candidate port stalled or no tag was available (retry after
    /// clocking); genuine errors (bad topology, malformed op) propagate.
    pub fn try_issue(&mut self, sim: &mut HmcSim, target: CubeId, op: &MemOp) -> Result<bool> {
        let cmd = op.command();
        let expects_response = op.expects_response();
        if expects_response && self.tags.exhausted() {
            self.stats.tag_stalls += 1;
            return Ok(false);
        }
        let (order, num_ports) = self.pick_ports(sim, target, op);
        let payload_len = self.write_payload(op);
        for &port_idx in &order[..num_ports] {
            let (dev, link) = self.ports[port_idx];
            // Tag 0x1ff is reserved for posted requests (no correlation).
            let tag = if expects_response {
                self.tags
                    .alloc(Pending {
                        addr: op.addr,
                        cmd,
                        issue_cycle: sim.current_clock(),
                        dev,
                        link,
                    })
                    .expect("exhaustion checked above")
            } else {
                0x1ff
            };
            let packet =
                Packet::request(cmd, target, op.addr, tag, link, &self.scratch[..payload_len])?;
            match sim.send(dev, link, packet) {
                Ok(()) => {
                    self.rr = (port_idx + 1) % self.ports.len();
                    self.stats.injected += 1;
                    if !expects_response {
                        self.stats.posted += 1;
                    }
                    return Ok(true);
                }
                Err(e) if e.is_stall() => {
                    self.stats.send_stalls += 1;
                    if expects_response {
                        self.tags.complete(tag);
                    }
                    continue;
                }
                Err(e) => {
                    if expects_response {
                        self.tags.complete(tag);
                    }
                    return Err(e);
                }
            }
        }
        Ok(false)
    }

    /// Drain every pending response from all ports, correlating tags and
    /// recording latencies. Returns the number of responses consumed.
    pub fn drain(&mut self, sim: &mut HmcSim) -> Result<usize> {
        self.drain_with(sim, |_, _| {})
    }

    /// [`Host::drain`] that hands every *correlated* response (decoded
    /// info plus its latency in cycles) to `capture`, in the exact order
    /// responses come off the links. This is how a serving session
    /// forwards device responses to a remote client without changing the
    /// drain schedule the in-process driver uses.
    pub fn drain_with<F>(&mut self, sim: &mut HmcSim, mut capture: F) -> Result<usize>
    where
        F: FnMut(ResponseInfo, Cycle),
    {
        let mut drained = 0;
        for &(dev, link) in &self.ports {
            loop {
                match sim.recv_with_latency(dev, link) {
                    Ok((packet, latency)) => {
                        drained += 1;
                        let info = decode_response(&packet)?;
                        if !info.is_ok() {
                            self.stats.errors += 1;
                            if info.status == hmc_types::ResponseStatus::LinkPoisoned {
                                self.stats.poisoned += 1;
                            }
                        }
                        match self.tags.complete(info.tag) {
                            Some(_ctx) => {
                                self.stats.completed += 1;
                                self.latency.record(latency);
                                capture(info, latency);
                            }
                            None => {
                                self.stats.orphans += 1;
                            }
                        }
                    }
                    Err(HmcError::NoResponse { .. }) => break,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_core::topology;
    use hmc_types::{BlockSize, DeviceConfig};
    use hmc_workloads::OpKind;

    fn sim() -> HmcSim {
        let mut s = HmcSim::new(1, DeviceConfig::small()).unwrap();
        let host = s.host_cube_id(0);
        topology::build_simple(&mut s, host).unwrap();
        s
    }

    #[test]
    fn attach_discovers_all_host_links() {
        let s = sim();
        let h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        assert_eq!(h.ports().len(), 4);
        assert!(Host::attach(&s, 7).is_err(), "unknown host has no links");
    }

    #[test]
    fn issue_and_complete_a_read() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let op = MemOp::read(0x40, BlockSize::B64);
        assert!(h.try_issue(&mut s, 0, &op).unwrap());
        assert_eq!(h.outstanding(), 1);
        for _ in 0..5 {
            s.clock().unwrap();
        }
        let drained = h.drain(&mut s).unwrap();
        assert_eq!(drained, 1);
        assert_eq!(h.stats.completed, 1);
        assert_eq!(h.outstanding(), 0);
        assert!(h.latency.count == 1 && h.latency.max >= 1);
    }

    #[test]
    fn round_robin_rotates_ports() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        for i in 0..4u64 {
            let op = MemOp::read(i * 64, BlockSize::B64);
            h.try_issue(&mut s, 0, &op).unwrap();
        }
        // One packet per link xbar queue.
        for l in 0..4u8 {
            assert_eq!(
                s.device(0).unwrap().xbars[l as usize].rqst.len(),
                1,
                "link {l}"
            );
        }
    }

    #[test]
    fn injection_reports_backpressure_when_everything_is_full() {
        let mut s = sim(); // xbar depth 8 per link, 4 links = 32 slots
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let mut accepted = 0;
        for i in 0..100u64 {
            let op = MemOp::read((i % 512) * 64, BlockSize::B64);
            if h.try_issue(&mut s, 0, &op).unwrap() {
                accepted += 1;
            } else {
                break;
            }
        }
        assert_eq!(accepted, 32, "all crossbar slots filled, then stall");
        assert!(h.stats.send_stalls > 0);
    }

    #[test]
    fn posted_writes_use_no_tags() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        let op = MemOp {
            kind: OpKind::PostedWrite,
            addr: 0,
            size: BlockSize::B64,
        };
        assert!(h.try_issue(&mut s, 0, &op).unwrap());
        assert_eq!(h.outstanding(), 0);
        assert_eq!(h.stats.posted, 1);
        for _ in 0..5 {
            s.clock().unwrap();
        }
        assert_eq!(h.drain(&mut s).unwrap(), 0, "no response for posted");
    }

    #[test]
    fn locality_aware_prefers_the_co_located_link() {
        let mut s = sim();
        let mut h = Host::attach(&s, s.host_cube_id(0))
            .unwrap()
            .with_selection(LinkSelection::LocalityAware);
        // Address decoding: low-interleave, 128-byte blocks; block index 5
        // lands in vault 5, quad 1 -> link 1.
        let op = MemOp::read(5 * 128, BlockSize::B64);
        h.try_issue(&mut s, 0, &op).unwrap();
        assert_eq!(s.device(0).unwrap().xbars[1].rqst.len(), 1);
        assert_eq!(s.device(0).unwrap().xbars[0].rqst.len(), 0);
    }

    #[test]
    fn locality_aware_falls_back_when_the_preferred_port_is_full() {
        let mut s = sim(); // xbar depth 8
        let mut h = Host::attach(&s, s.host_cube_id(0))
            .unwrap()
            .with_selection(LinkSelection::LocalityAware);
        // Fill link 1 (the preferred port for vault 5) to the brim.
        for tag in 0..8u16 {
            let p = hmc_types::Packet::request(
                hmc_types::Command::Rd(BlockSize::B64),
                0,
                5 * 128,
                tag,
                1,
                &[],
            )
            .unwrap();
            s.send(0, 1, p).unwrap();
        }
        // The next locality-preferred issue must fall back to another link.
        let op = MemOp::read(5 * 128, BlockSize::B64);
        assert!(h.try_issue(&mut s, 0, &op).unwrap());
        assert_eq!(
            s.device(0).unwrap().xbars[1].rqst.len(),
            8,
            "preferred port stayed full"
        );
        let elsewhere: usize = [0usize, 2, 3]
            .iter()
            .map(|&l| s.device(0).unwrap().xbars[l].rqst.len())
            .sum();
        assert_eq!(elsewhere, 1, "fallback port took the request");
        assert!(h.stats.send_stalls >= 1, "the stall was recorded");
    }

    #[test]
    fn outstanding_is_capped_by_the_tag_space() {
        // 512 tags: with nothing draining, issue 513 response-expecting
        // ops; the 513th reports backpressure without touching the sim.
        let mut s = {
            let mut s = HmcSim::new(
                1,
                hmc_types::DeviceConfig::small().with_queue_depths(256, 128),
            )
            .unwrap();
            let host = s.host_cube_id(0);
            topology::build_simple(&mut s, host).unwrap();
            s
        };
        let mut h = Host::attach(&s, s.host_cube_id(0)).unwrap();
        for i in 0..512u64 {
            let op = MemOp::read((i % 256) * 128, BlockSize::B64);
            assert!(h.try_issue(&mut s, 0, &op).unwrap(), "op {i}");
        }
        assert_eq!(h.outstanding(), 512);
        let op = MemOp::read(0, BlockSize::B64);
        assert!(!h.try_issue(&mut s, 0, &op).unwrap(), "tag space exhausted");
        assert_eq!(s.stats().sent, 512, "the 513th never reached the device");
    }

    #[test]
    fn latency_stats_bucket_correctly() {
        let mut l = LatencyStats::default();
        l.record(1);
        l.record(3);
        l.record(1000);
        assert_eq!(l.count, 3);
        assert_eq!(l.max, 1000);
        assert!(l.mean() > 300.0);
        assert_eq!(l.buckets[0], 1); // latency 1
        assert_eq!(l.buckets[1], 1); // latency 3
        assert_eq!(l.buckets[9], 1); // latency 1000 in [512,1024)
    }
}
