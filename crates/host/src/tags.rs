//! Request tag management.
//!
//! HMC tags are 9-bit values correlating responses — which "may arrive out
//! of order" (paper §V.C) — back to their requests. The pool hands out the
//! 512 possible tags and stores per-tag request context until completion.

use hmc_types::{Command, CubeId, Cycle, LinkId};

/// Number of distinct tags (9-bit field).
pub const NUM_TAGS: usize = 512;

/// Context retained for an in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// Target physical address.
    pub addr: u64,
    /// Request command.
    pub cmd: Command,
    /// Clock value at injection.
    pub issue_cycle: Cycle,
    /// Device the request was injected into.
    pub dev: CubeId,
    /// Link the request was injected on.
    pub link: LinkId,
}

/// A fixed pool of 9-bit tags with per-tag pending context.
#[derive(Debug)]
pub struct TagPool {
    free: Vec<u16>,
    pending: Vec<Option<Pending>>,
}

impl Default for TagPool {
    fn default() -> Self {
        Self::new()
    }
}

impl TagPool {
    /// A full pool of 512 tags.
    pub fn new() -> Self {
        TagPool {
            // Hand out low tags first: pop from the back of a reversed
            // list so tag 0 goes first (matches typical C harnesses).
            free: (0..NUM_TAGS as u16).rev().collect(),
            pending: vec![None; NUM_TAGS],
        }
    }

    /// Allocate a tag for the given request context; `None` if all 512
    /// tags are in flight.
    pub fn alloc(&mut self, ctx: Pending) -> Option<u16> {
        let tag = self.free.pop()?;
        self.pending[tag as usize] = Some(ctx);
        Some(tag)
    }

    /// Complete a tag, returning its context; `None` for unknown tags
    /// (response correlation failures).
    pub fn complete(&mut self, tag: u16) -> Option<Pending> {
        let slot = self.pending.get_mut(tag as usize)?;
        let ctx = slot.take()?;
        self.free.push(tag);
        Some(ctx)
    }

    /// Number of tags currently in flight.
    pub fn outstanding(&self) -> usize {
        NUM_TAGS - self.free.len()
    }

    /// True when no tag is available.
    pub fn exhausted(&self) -> bool {
        self.free.is_empty()
    }

    /// Context of an in-flight tag, if any.
    pub fn peek(&self, tag: u16) -> Option<&Pending> {
        self.pending.get(tag as usize)?.as_ref()
    }

    /// Release everything (harness reset).
    pub fn reset(&mut self) {
        self.free = (0..NUM_TAGS as u16).rev().collect();
        self.pending.iter_mut().for_each(|p| *p = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmc_types::BlockSize;

    fn ctx(addr: u64) -> Pending {
        Pending {
            addr,
            cmd: Command::Rd(BlockSize::B64),
            issue_cycle: 0,
            dev: 0,
            link: 0,
        }
    }

    #[test]
    fn tags_allocate_from_zero() {
        let mut p = TagPool::new();
        assert_eq!(p.alloc(ctx(0)), Some(0));
        assert_eq!(p.alloc(ctx(1)), Some(1));
        assert_eq!(p.outstanding(), 2);
    }

    #[test]
    fn pool_exhausts_at_512() {
        let mut p = TagPool::new();
        for i in 0..512u64 {
            assert!(p.alloc(ctx(i)).is_some(), "tag {i}");
        }
        assert!(p.exhausted());
        assert_eq!(p.alloc(ctx(999)), None);
        assert_eq!(p.outstanding(), 512);
    }

    #[test]
    fn complete_returns_context_and_recycles() {
        let mut p = TagPool::new();
        let t = p.alloc(ctx(0x40)).unwrap();
        assert_eq!(p.peek(t).unwrap().addr, 0x40);
        let got = p.complete(t).unwrap();
        assert_eq!(got.addr, 0x40);
        assert_eq!(p.outstanding(), 0);
        assert!(p.peek(t).is_none());
        // Tag is reusable.
        assert!(p.alloc(ctx(0x80)).is_some());
    }

    #[test]
    fn double_complete_and_unknown_tags_fail_safely() {
        let mut p = TagPool::new();
        let t = p.alloc(ctx(0)).unwrap();
        assert!(p.complete(t).is_some());
        assert!(p.complete(t).is_none(), "double complete");
        assert!(p.complete(511).is_none(), "never allocated");
        assert!(p.complete(9999).is_none(), "out of range");
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn reset_restores_full_pool() {
        let mut p = TagPool::new();
        for i in 0..100 {
            p.alloc(ctx(i)).unwrap();
        }
        p.reset();
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.alloc(ctx(0)), Some(0));
    }
}
