//! Tag-space coverage: exhaustion of the 512-tag pool as a typed,
//! panic-free stall, and out-of-order response correlation — the HMC
//! property ("responses may arrive out of order", paper §V.C) the tag
//! pool exists to serve.

use hmc_core::{topology, HmcSim};
use hmc_host::{Host, Pending, TagPool, NUM_TAGS};
use hmc_types::{BlockSize, Command, DeviceConfig};
use hmc_workloads::MemOp;

fn ctx(addr: u64) -> Pending {
    Pending {
        addr,
        cmd: Command::Rd(BlockSize::B64),
        issue_cycle: 0,
        dev: 0,
        link: 0,
    }
}

fn deep_sim() -> HmcSim {
    // Queues deep enough to hold 512 requests without a send stall, so
    // tag exhaustion is the *only* backpressure in play.
    let mut s = HmcSim::new(1, DeviceConfig::small().with_queue_depths(256, 128)).unwrap();
    let host = s.host_cube_id(0);
    topology::build_simple(&mut s, host).unwrap();
    s
}

#[test]
fn the_pool_exhausts_at_512_without_panicking() {
    let mut pool = TagPool::new();
    let mut handed_out = Vec::new();
    for i in 0..NUM_TAGS as u64 {
        let tag = pool.alloc(ctx(i * 64)).expect("tags 0..511 all allocate");
        handed_out.push(tag);
    }
    assert!(pool.exhausted());
    assert_eq!(pool.outstanding(), NUM_TAGS);
    // Every tag distinct, every tag a legal 9-bit value.
    let mut sorted = handed_out.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), NUM_TAGS, "no tag handed out twice");
    assert!(handed_out.iter().all(|&t| t < 512));
    // Allocation past the limit is a None, not a panic, and changes
    // nothing.
    for _ in 0..10 {
        assert_eq!(pool.alloc(ctx(0xdead)), None);
    }
    assert_eq!(pool.outstanding(), NUM_TAGS);
    // One completion frees exactly one slot.
    assert!(pool.complete(handed_out[0]).is_some());
    assert!(!pool.exhausted());
    assert_eq!(pool.alloc(ctx(1)), Some(handed_out[0]), "freed tag recycles");
}

#[test]
fn exhaustion_through_the_host_is_a_typed_stall() {
    let mut sim = deep_sim();
    let mut host = Host::attach(&sim, sim.host_cube_id(0)).unwrap();
    for i in 0..512u64 {
        let op = MemOp::read((i % 256) * 128, BlockSize::B64);
        assert!(host.try_issue(&mut sim, 0, &op).unwrap(), "op {i}");
    }
    assert_eq!(host.outstanding(), 512);
    assert_eq!(host.stats.tag_stalls, 0);

    // The 513th response-expecting op must come back Ok(false) — a
    // retryable stall, not an error, not a panic — and be accounted as a
    // tag stall, distinct from queue-full send stalls.
    let op = MemOp::read(0, BlockSize::B64);
    for attempt in 1..=3u64 {
        assert!(!host.try_issue(&mut sim, 0, &op).unwrap());
        assert_eq!(host.stats.tag_stalls, attempt);
    }
    assert_eq!(host.stats.send_stalls, 0, "no port was even tried");
    assert_eq!(host.stats.injected, 512);

    // Posted traffic needs no tag, so it still flows at exhaustion.
    let posted = MemOp {
        kind: hmc_workloads::OpKind::PostedWrite,
        addr: 0,
        size: BlockSize::B64,
    };
    assert!(host.try_issue(&mut sim, 0, &posted).unwrap());

    // Draining responses frees tags and the stalled op then issues.
    for _ in 0..10_000 {
        sim.clock().unwrap();
        host.drain(&mut sim).unwrap();
        if host.outstanding() < 512 {
            break;
        }
    }
    assert!(host.outstanding() < 512, "device never answered");
    assert!(host.try_issue(&mut sim, 0, &op).unwrap());
    assert_eq!(host.stats.orphans, 0);
}

#[test]
fn out_of_order_completion_correlates_by_tag() {
    let mut pool = TagPool::new();
    let tags: Vec<u16> = (0..16u64)
        .map(|i| pool.alloc(ctx(0x1000 + i * 0x40)).unwrap())
        .collect();
    // Complete in a scrambled order; each completion must return the
    // context allocated under that tag, not arrival-order context.
    let scrambled = [7usize, 0, 15, 3, 11, 1, 14, 2, 9, 5, 13, 4, 10, 6, 12, 8];
    for &i in &scrambled {
        let got = pool.complete(tags[i]).expect("in-flight tag completes");
        assert_eq!(got.addr, 0x1000 + (i as u64) * 0x40, "tag {i} context");
    }
    assert_eq!(pool.outstanding(), 0);
    // A second completion of the same tags is a correlation failure, not
    // a panic.
    for &t in &tags {
        assert!(pool.complete(t).is_none());
    }
}

#[test]
fn host_correlation_survives_out_of_order_device_responses() {
    // End-to-end: issue reads across all four links; vault pipelines and
    // crossbar arbitration reorder responses relative to issue order. The
    // host must still correlate every response to its issue context.
    let mut sim = deep_sim();
    let mut host = Host::attach(&sim, sim.host_cube_id(0)).unwrap();
    let n = 64u64;
    for i in 0..n {
        // Stride across vaults so the requests fan out and race.
        let op = MemOp::read((i * 37 % 256) * 128, BlockSize::B64);
        assert!(host.try_issue(&mut sim, 0, &op).unwrap(), "op {i}");
    }
    let mut completed = 0u64;
    let mut observed = Vec::new();
    for _ in 0..10_000 {
        sim.clock().unwrap();
        host.drain_with(&mut sim, |info, latency| {
            completed += 1;
            observed.push((info.tag, latency));
        })
        .unwrap();
        if completed == n {
            break;
        }
    }
    assert_eq!(completed, n, "every read answered");
    assert_eq!(host.stats.completed, n);
    assert_eq!(host.stats.orphans, 0, "no correlation failures");
    assert_eq!(host.outstanding(), 0);
    // Each tag seen exactly once.
    let mut tags: Vec<u16> = observed.iter().map(|&(t, _)| t).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len() as u64, n, "no tag answered twice");
    assert!(observed.iter().all(|&(_, lat)| lat >= 1));
}
