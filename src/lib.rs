//! # hmc-sim
//!
//! A Rust reproduction of **HMC-Sim** — the simulation framework for
//! Hybrid Memory Cube devices introduced by Leidel & Chen (IPDPSW 2014)
//! as part of the Goblin-Core64 project.
//!
//! The workspace models the full HMC 1.0 device stack:
//!
//! * [`hmc_types`] — the packet protocol (FLITs, commands, header/tail
//!   words, CRC-32/Koopman), 34-bit addressing with configurable
//!   interleave maps, and the device configuration model;
//! * [`hmc_mem`] — sparse DRAM storage, banks with row-buffer and
//!   DRAM-die accounting, per-vault bank stacks;
//! * [`hmc_core`] — the device hierarchy (links → crossbars → quads →
//!   vaults → banks → DRAMs), fixed-depth queue slots, the six-stage
//!   sub-cycle clock, registers with MODE/JTAG access, topologies with
//!   chaining, routing, and link-error simulation;
//! * [`hmc_trace`] — cycle-stamped trace events, verbosity filtering,
//!   pluggable sinks, and the per-cycle series collector behind the
//!   paper's Figure 5;
//! * [`hmc_host`] — tag management, round-robin / locality-aware link
//!   selection, and the inject-until-stall run loop of the paper's §VI.A
//!   harness;
//! * [`hmc_workloads`] — glibc-PRNG random access, streams, GUPS,
//!   pointer chases, stencils, replays and mixtures.
//!
//! # Quick start
//!
//! ```
//! use hmc_sim::prelude::*;
//!
//! // One 4-link, 16-vault, 2 GiB device, every link host-attached.
//! let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
//! let host_id = sim.host_cube_id(0);
//! topology::build_simple(&mut sim, host_id).unwrap();
//!
//! // Write 64 bytes, read them back.
//! let data = [7u8; 64];
//! let wr = Packet::request(Command::Wr(BlockSize::B64), 0, 0x1000, 1, 0, &data).unwrap();
//! let rd = Packet::request(Command::Rd(BlockSize::B64), 0, 0x1000, 2, 1, &[]).unwrap();
//! sim.send(0, 0, wr).unwrap();
//! sim.send(0, 1, rd).unwrap();
//! for _ in 0..4 {
//!     sim.clock().unwrap();
//! }
//! while let Ok(rsp) = sim.recv(0, 1) {
//!     let info = decode_response(&rsp).unwrap();
//!     if info.tag == 2 {
//!         assert_eq!(info.data, data.to_vec());
//!     }
//! }
//! ```
//!
//! The examples directory walks through the paper's Figure 4 calling
//! sequence (`quickstart`), the §VI random-access harness
//! (`random_access`), the Figure 1 topologies (`chained_topologies`),
//! register access (`register_access`), block-size bandwidth sweeps
//! (`bandwidth_sweep`), and multi-object NUMA modelling
//! (`numa_channels`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hmc_core;
pub use hmc_host;
pub use hmc_mem;
pub use hmc_trace;
pub use hmc_types;
pub use hmc_workloads;

/// The most common imports for driving a simulation.
pub mod prelude {
    pub use hmc_core::builder::{decode_response, ResponseInfo};
    pub use hmc_core::{topology, ConflictPolicy, FaultConfig, HmcSim, SimParams};
    pub use hmc_host::{run_workload, Host, LinkSelection, RunConfig, RunReport};
    pub use hmc_trace::{
        CountingSink, SeriesCollector, SharedSink, TraceSink, Tracer, Verbosity,
    };
    pub use hmc_types::{
        BlockSize, Command, CubeId, Cycle, DeviceConfig, HmcError, LinkId, Packet, PhysAddr,
        Result, StorageMode, VaultId,
    };
    pub use hmc_workloads::{
        Gups, MemOp, Mixed, OpKind, PointerChase, RandomAccess, Replay, Stencil, Stream,
        StreamMode, UpdateKind, Workload,
    };
}
