//! The paper's §VI random-access memory test harness, scaled for a quick
//! interactive run.
//!
//! Generates a randomized stream of mixed 64-byte reads and writes
//! (glibc-style PRNG, 50/50 mix), injects round-robin across all host
//! links until the crossbar arbitration queues stall, and reports the
//! utilization and trace statistics of Figure 5 plus the simulated
//! runtime of Table I.
//!
//! Run with: `cargo run --release --example random_access [requests]`

use hmc_core::{topology, HmcSim};
use hmc_host::{run_workload, Host, RunConfig};
use hmc_trace::{EventKind, SeriesCollector, SharedSink, Tracer, Verbosity};
use hmc_types::{DeviceConfig, StorageMode};
use hmc_workloads::RandomAccess;

fn main() {
    let requests: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    // The paper's 4-link, 8-bank, 2 GB device with its 128/64 queues.
    let config = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, config).expect("config validates");
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).expect("topology");

    // Collect the Figure 5 quantities while running.
    let series = SharedSink::new(SeriesCollector::new(64, sim.config().num_vaults));
    sim.set_tracer(Tracer::new(Verbosity::Full, Box::new(series.clone())));

    let mut host = Host::attach(&sim, host_id).expect("host attach");
    let mut workload = RandomAccess::new(1, 2 << 30, hmc_types::BlockSize::B64, 50, requests);

    println!("random access: {requests} 64-byte requests, 50/50 read/write, 2 GiB working set");
    let report = run_workload(&mut sim, &mut host, &mut workload, RunConfig::default())
        .expect("run completes");

    println!("\nsimulated runtime: {} clock cycles", report.cycles);
    println!("throughput:        {:.2} requests/cycle", report.throughput);
    println!(
        "latency:           mean {:.1} cycles, max {} cycles",
        report.mean_latency, report.max_latency
    );
    println!("send stalls:       {}", report.send_stalls);
    println!("errors:            {}", report.errors);

    let collector = series.0.lock();
    let totals = collector.totals();
    println!("\nfigure-5 quantities (whole run):");
    println!("  bank conflicts:     {}", totals.bank_conflicts);
    println!("  read completions:   {}", totals.reads);
    println!("  write completions:  {}", totals.writes);
    println!("  xbar request stalls:{}", totals.xbar_stalls);
    println!("  route-latency evts: {}", totals.latency_events);

    let vu = collector.vaults();
    let (busiest, load) = vu.busiest_vault();
    println!(
        "\nvault utilization: busiest vault {busiest} with {load} requests, \
         load imbalance (cv) {:.4}",
        vu.load_imbalance()
    );

    // Round-robin injection balances traffic; verify it visibly here.
    assert!(vu.load_imbalance() < 0.2, "round-robin should balance vaults");
    assert_eq!(report.completed, requests);
    let _ = EventKind::ALL; // (anchor the trace API for readers)
    println!("\nrun complete: all {requests} responses correlated.");
}
