//! Effective bandwidth sweep across request block sizes (16–128 bytes).
//!
//! The HMC packet format spends one FLIT on header+tail regardless of
//! payload, so small requests waste a larger share of link beats — this
//! sweep shows effective data bandwidth climbing with block size, and
//! compares random against streaming access on the same device.
//!
//! Run with: `cargo run --release --example bandwidth_sweep`

use hmc_core::{topology, HmcSim};
use hmc_host::{run_workload, Host, RunConfig};
use hmc_types::{BlockSize, DeviceConfig, StorageMode};
use hmc_workloads::{RandomAccess, Stream, StreamMode, Workload};

const REQUESTS: u64 = 50_000;

fn device() -> (HmcSim, Host) {
    let config = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, config).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    let host = Host::attach(&sim, host).unwrap();
    (sim, host)
}

fn run<W: Workload>(mut workload: W) -> (u64, f64, f64) {
    let (mut sim, mut host) = device();
    let report = run_workload(&mut sim, &mut host, &mut workload, RunConfig::default()).unwrap();
    (report.cycles, report.throughput, report.mean_latency)
}

fn main() {
    println!("block-size bandwidth sweep: {REQUESTS} requests per point\n");
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "block", "cycles", "req/cycle", "bytes/cycle", "data FLITs/pkt", "latency"
    );
    for bs in BlockSize::ALL {
        let w = RandomAccess::new(1, 2 << 30, bs, 50, REQUESTS);
        let (cycles, tput, lat) = run(w);
        println!(
            "{:<8} {:>10} {:>12.2} {:>14.1} {:>14} {:>10.1}",
            format!("{}B", bs.bytes()),
            cycles,
            tput,
            tput * bs.bytes() as f64,
            bs.data_flits(),
            lat
        );
    }

    println!("\nrandom vs. stream at 64 B:");
    let (rc, rt, _) = run(RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, REQUESTS));
    let (sc, st, _) = run(Stream::unit(
        2 << 30,
        BlockSize::B64,
        StreamMode::Copy,
        REQUESTS,
    ));
    println!("  random: {rc} cycles ({rt:.2} req/cycle)");
    println!("  stream: {sc} cycles ({st:.2} req/cycle)");
    println!(
        "  unit-stride streaming rotates vaults/banks perfectly under the\n\
         \x20 low-interleave map, so it avoids bank conflicts entirely."
    );
}
