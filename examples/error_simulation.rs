//! Error simulation (§IV requirement 5): lossy SERDES links with CRC
//! detection and retransmission, swept across packet error rates.
//!
//! Run with: `cargo run --release --example error_simulation`

use hmc_sim::prelude::*;

fn run(rate: f64) -> (RunReport, u64, u64, u64) {
    let config = DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
    let mut sim = HmcSim::new(1, config).expect("config");
    if rate > 0.0 {
        sim.enable_fault_injection(FaultConfig {
            packet_error_rate: rate,
            retry_cycles: 8,
            seed: 0xbad1,
            ..FaultConfig::default()
        });
    }
    let host_id = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host_id).expect("topology");
    let mut host = Host::attach(&sim, host_id).expect("host");
    let mut workload = RandomAccess::new(1, 2 << 30, BlockSize::B64, 50, 50_000);
    let report = run_workload(&mut sim, &mut host, &mut workload, RunConfig::default())
        .expect("run completes");
    let (injected, detected, poisoned) = sim
        .fault_state()
        .map(|f| (f.injected, f.detected, f.poisoned))
        .unwrap_or((0, 0, 0));
    (report, injected, detected, poisoned)
}

fn main() {
    println!("link error simulation: 50,000 random requests per point\n");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "error rate", "cycles", "req/cyc", "latency", "corruptions", "recovered", "poisoned"
    );
    let (clean, _, _, _) = run(0.0);
    for rate in [0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.2] {
        let (report, injected, detected, poisoned) = run(rate);
        println!(
            "{:>10} {:>10} {:>10.2} {:>10.1} {:>12} {:>12} {:>10}",
            format!("{rate:.0e}"),
            report.cycles,
            report.throughput,
            report.mean_latency,
            injected,
            detected,
            poisoned
        );
        assert_eq!(report.completed, 50_000, "every request still completes");
        assert_eq!(injected, detected, "every corruption is detected");
        assert_eq!(report.errors, poisoned, "errors are exactly the poisons");
    }
    println!(
        "\nall runs answered all 50,000 requests — corrupted packets are\n\
         detected by the crossbar CRC check and recovered by in-order\n\
         retransmission; packets that exhaust the retry cap come back as\n\
         poisoned error responses while the link retrains\n\
         (clean baseline: {} cycles).",
        clean.cycles
    );
}
