//! Quickstart: the paper's Figure 4 API calling sequence, line for line.
//!
//! ```text
//! /* Section A. Init the devices */        hmcsim_init(...)
//! /* Section B. Config the link topology */ hmcsim_link_config(...)
//! /* Section C. Build a request packet */   hmcsim_build_memrequest(...)
//! /* Section C. Send the request */         hmcsim_send(...)
//! /* Clock the sim */                       hmcsim_clock(...)
//! /* Section A. Free the devices */         hmcsim_free(...)
//! ```
//!
//! Run with: `cargo run --example quickstart`

use hmc_core::api::{
    hmcsim_build_memrequest, hmcsim_clock, hmcsim_decode_memresponse, hmcsim_free, hmcsim_init,
    hmcsim_link_config, hmcsim_recv, hmcsim_send, LinkType,
};
use hmc_types::{BlockSize, Command};

fn main() {
    // Section A. Init the devices: 1 device, 4 links, 16 vaults,
    // 64-deep vault queues, 8 banks, 16 DRAMs, 2 GB, 128-deep crossbars.
    let mut hmc = hmcsim_init(1, 4, 16, 64, 8, 16, 2, 128).expect("init");
    let host = hmc.host_cube_id(0);
    println!("initialized: 1 device, host cube ID {host}");

    // Section B. Config the link topology: all four links host-attached.
    for i in 0..4 {
        hmcsim_link_config(&mut hmc, host, 0, i, i, LinkType::HostDev).expect("link config");
    }
    println!("topology: 4 host links on device 0");

    // Section C. Build a request packet: WR64 at 0x1000, tag 1, link 0 —
    // then a RD64 to read it back.
    let payload: Vec<u8> = (0..64).collect();
    let write =
        hmcsim_build_memrequest(0, 0x1000, 1, Command::Wr(BlockSize::B64), 0, &payload)
            .expect("build write");
    let read = hmcsim_build_memrequest(0, 0x1000, 2, Command::Rd(BlockSize::B64), 1, &[])
        .expect("build read");

    // Section C. Send the requests.
    hmcsim_send(&mut hmc, 0, 0, write).expect("send write");
    hmcsim_send(&mut hmc, 0, 1, read).expect("send read");
    println!("sent: WR64 (tag 1) on link 0, RD64 (tag 2) on link 1");

    // Clock the sim and collect both responses.
    let mut responses = Vec::new();
    for _ in 0..10 {
        hmcsim_clock(&mut hmc).expect("clock");
        for link in 0..4 {
            while let Ok(packet) = hmcsim_recv(&mut hmc, 0, link) {
                responses.push(hmcsim_decode_memresponse(&packet).expect("decode"));
            }
        }
        if responses.len() == 2 {
            break;
        }
    }

    responses.sort_by_key(|r| r.tag);
    for r in &responses {
        println!(
            "response: tag {} {} status {:?} ({} data bytes)",
            r.tag,
            r.cmd.mnemonic(),
            r.status,
            r.data.len()
        );
    }
    assert_eq!(responses.len(), 2);
    assert_eq!(responses[1].data, payload, "read returns the written data");
    println!(
        "data integrity verified after {} cycles",
        hmc.current_clock()
    );

    // Section A. Free the devices.
    hmcsim_free(hmc);
}
