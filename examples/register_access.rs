//! Device register access both ways (paper §V.D): in-band MODE_READ /
//! MODE_WRITE packets over the memory links, and side-band JTAG access
//! that bypasses the clock domains entirely.
//!
//! Run with: `cargo run --example register_access`

use hmc_core::{decode_response, regs, topology, HmcSim, RegClass};
use hmc_types::{Command, DeviceConfig, Packet};

fn mode_write(sim: &mut HmcSim, reg: u32, value: u64, tag: u16) {
    let mut payload = [0u8; 16];
    payload[..8].copy_from_slice(&value.to_le_bytes());
    let req = Packet::request(Command::ModeWrite, 0, reg as u64, tag, 0, &payload).unwrap();
    sim.send(0, 0, req).unwrap();
}

fn mode_read(sim: &mut HmcSim, reg: u32, tag: u16) {
    let req = Packet::request(Command::ModeRead, 0, reg as u64, tag, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
}

fn collect(sim: &mut HmcSim) -> Vec<hmc_core::ResponseInfo> {
    let mut out = Vec::new();
    for _ in 0..8 {
        sim.clock().unwrap();
        while let Ok(p) = sim.recv(0, 0) {
            out.push(decode_response(&p).unwrap());
        }
    }
    out
}

fn main() {
    let mut sim = HmcSim::new(1, DeviceConfig::small()).unwrap();
    let host = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();

    println!("register inventory ({} registers):", {
        let d = sim.device(0).unwrap();
        d.registers.len()
    });
    for (idx, class, value) in sim.device(0).unwrap().registers.iter() {
        let class = match class {
            RegClass::Rw => "RW ",
            RegClass::Ro => "RO ",
            RegClass::Rws => "RWS",
        };
        println!("  {idx:#08x}  {class}  {value:#018x}");
    }

    // --- In-band access: MODE_WRITE then MODE_READ of GC. --------------
    println!("\nin-band MODE_WRITE GC=0xabcd, MODE_READ GC:");
    mode_write(&mut sim, regs::GC, 0xabcd, 1);
    mode_read(&mut sim, regs::GC, 2);
    for r in collect(&mut sim) {
        println!(
            "  tag {} -> {} status {:?} data {:02x?}",
            r.tag,
            r.cmd.mnemonic(),
            r.status,
            &r.data.get(..8).unwrap_or(&[])
        );
        if r.tag == 2 {
            let v = u64::from_le_bytes(r.data[..8].try_into().unwrap());
            assert_eq!(v, 0xabcd, "read back the written value");
        }
    }

    // Writing a read-only register in-band earns an error response.
    println!("\nin-band MODE_WRITE to read-only FEAT:");
    mode_write(&mut sim, regs::FEAT, 1, 3);
    for r in collect(&mut sim) {
        println!("  tag {} -> {} status {:?}", r.tag, r.cmd.mnemonic(), r.status);
        assert!(!r.is_ok());
    }

    // --- Side-band JTAG access: no packets, no clock, no bandwidth. ----
    println!("\nside-band JTAG access:");
    let clock_before = sim.current_clock();
    sim.jtag_reg_write(0, regs::GC, 0x1234).unwrap();
    let gc = sim.jtag_reg_read(0, regs::GC).unwrap();
    let feat = sim.jtag_reg_read(0, regs::FEAT).unwrap();
    assert_eq!(sim.current_clock(), clock_before, "JTAG is out of band");
    println!("  GC   = {gc:#x} (written via JTAG, clock unchanged)");
    println!(
        "  FEAT = {feat:#x} (capacity {} GB, {} links, {} vaults)",
        feat & 0xff,
        (feat >> 8) & 0xff,
        (feat >> 16) & 0xff
    );

    // RWS semantics: a written EDR register self-clears at the next edge.
    sim.jtag_reg_write(0, regs::EDR0, 0xff).unwrap();
    println!(
        "  EDR0 = {:#x} after JTAG write (before clock edge)",
        sim.jtag_reg_read(0, regs::EDR0).unwrap()
    );
    sim.clock().unwrap();
    println!(
        "  EDR0 = {:#x} after one clock edge (RWS self-clear)",
        sim.jtag_reg_read(0, regs::EDR0).unwrap()
    );
    assert_eq!(sim.jtag_reg_read(0, regs::EDR0).unwrap(), 0);
}
