//! Figure 1: the four multi-device topologies — simple, ring, mesh and
//! 2D torus — exercised with live traffic.
//!
//! For each topology the example builds the device network, sends one
//! read to every device, and reports per-device round-trip latencies —
//! showing how chaining hops add cycles exactly as the routed distance
//! grows.
//!
//! Run with: `cargo run --example chained_topologies`

use hmc_core::{topology, HmcSim};
use hmc_types::{BlockSize, Command, CubeId, DeviceConfig, Packet};

/// Send one read to each device and report round-trip cycle latencies.
fn probe(sim: &mut HmcSim, label: &str) {
    println!("== {label} ==");
    let host_link = sim.device(0).unwrap().host_links()[0];
    let n = sim.num_devices();
    for dev in 0..n {
        let tag = 100 + dev as u16;
        let req =
            Packet::request(Command::Rd(BlockSize::B16), dev, 0x40, tag, host_link, &[]).unwrap();
        let start = sim.current_clock();
        sim.send(0, host_link, req).expect("send on the host link");
        let mut latency = None;
        for _ in 0..64 {
            sim.clock().expect("clock");
            if let Ok((rsp, _)) = sim.recv_with_latency(0, host_link) {
                assert_eq!(rsp.tag(), tag);
                latency = Some(sim.current_clock() - start);
                break;
            }
        }
        match latency {
            Some(cycles) => println!("  device {dev}: round trip {cycles} cycles"),
            None => println!("  device {dev}: unreachable (no response in 64 cycles)"),
        }
    }
    println!();
}

fn four_link(n: u8) -> HmcSim {
    HmcSim::new(n, DeviceConfig::small()).expect("config")
}

fn eight_link(n: u8) -> HmcSim {
    HmcSim::new(
        n,
        DeviceConfig::paper_8link_8bank_4gb().with_queue_depths(16, 8),
    )
    .expect("config")
}

fn main() {
    println!("Figure 1 device topologies under live traffic\n");

    // Simple: one device, every link to the host. Latency is minimal.
    let mut sim = four_link(1);
    let host: CubeId = sim.host_cube_id(0);
    topology::build_simple(&mut sim, host).unwrap();
    probe(&mut sim, "simple (1 device, all links to host)");

    // Chain: host - d0 - d1 - d2 - d3. Each hop adds cycles.
    let mut sim = four_link(4);
    let host = sim.host_cube_id(0);
    topology::build_chain(&mut sim, host).unwrap();
    probe(&mut sim, "chain (4 devices)");

    // Ring: wraps around, so the far side is reachable both ways.
    let mut sim = four_link(4);
    let host = sim.host_cube_id(0);
    topology::build_ring(&mut sim, host).unwrap();
    probe(&mut sim, "ring (4 devices)");

    // Mesh: 3x2 grid, host on the corner.
    let mut sim = four_link(6);
    let host = sim.host_cube_id(0);
    topology::build_mesh(&mut sim, 3, 2, host).unwrap();
    probe(&mut sim, "mesh (3x2 grid)");

    // 2D torus: needs 8-link devices (four neighbours + a host link).
    let mut sim = eight_link(4);
    let host = sim.host_cube_id(0);
    topology::build_torus(&mut sim, 2, 2, host).unwrap();
    probe(&mut sim, "2D torus (2x2, 8-link devices)");

    // Deliberate misconfiguration (§IV requirement 2): an unreachable
    // device produces an error response, not a hang.
    let mut sim = four_link(2);
    let host = sim.host_cube_id(0);
    sim.connect_host(0, 0, host).unwrap();
    // Device 1 is never wired in.
    sim.finalize_topology().unwrap();
    let req = Packet::request(Command::Rd(BlockSize::B16), 1, 0x40, 7, 0, &[]).unwrap();
    sim.send(0, 0, req).unwrap();
    for _ in 0..8 {
        sim.clock().unwrap();
    }
    let rsp = sim.recv(0, 0).expect("an error response comes back");
    let info = hmc_core::decode_response(&rsp).unwrap();
    println!("== deliberately misconfigured topology ==");
    println!(
        "  request to unwired device 1 -> {} with status {:?}\n",
        info.cmd.mnemonic(),
        info.status
    );
    assert!(!info.is_ok());
}
