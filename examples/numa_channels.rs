//! Multiple independent HMC-Sim objects as NUMA memory channels.
//!
//! "An application may contain more than one HMC-Sim object in order to
//! simulate architectural characteristics such as non-uniform memory
//! access" (paper §IV.A), and the rudimentary clock domains let each
//! object run at its own rate (§IV.C). This example drives two channels —
//! a near channel clocked every host step and a far channel clocked at
//! half rate — and compares observed latencies.
//!
//! Run with: `cargo run --release --example numa_channels`

use hmc_core::{topology, HmcSim};
use hmc_host::Host;
use hmc_types::{BlockSize, DeviceConfig, StorageMode};
use hmc_workloads::{MemOp, RandomAccess, Workload};

struct Channel {
    sim: HmcSim,
    host: Host,
    name: &'static str,
    clock_divider: u64,
}

impl Channel {
    fn new(name: &'static str, clock_divider: u64) -> Self {
        let config =
            DeviceConfig::paper_4link_8bank_2gb().with_storage_mode(StorageMode::TimingOnly);
        let mut sim = HmcSim::new(1, config).unwrap();
        let host_id = sim.host_cube_id(0);
        topology::build_simple(&mut sim, host_id).unwrap();
        let host = Host::attach(&sim, host_id).unwrap();
        Channel {
            sim,
            host,
            name,
            clock_divider,
        }
    }
}

fn main() {
    let mut near = Channel::new("near (full rate)", 1);
    let mut far = Channel::new("far (half rate)", 2);

    // One workload, interleaved across channels by address bit: an
    // even/odd page split, as a first-touch NUMA policy might produce.
    let mut workload = RandomAccess::new(7, 2 << 30, BlockSize::B64, 50, 100_000);
    let mut pending: Vec<(usize, MemOp)> = Vec::new();

    let mut host_step: u64 = 0;
    let mut remaining = true;
    while remaining || near.host.outstanding() > 0 || far.host.outstanding() > 0 {
        // Refill the pending pool from the workload.
        while pending.len() < 64 && remaining {
            match workload.next_op() {
                Some(op) => {
                    let channel = ((op.addr >> 12) & 1) as usize;
                    pending.push((channel, op));
                }
                None => remaining = false,
            }
        }
        // Inject what fits this host step.
        pending.retain(|(channel, op)| {
            let ch: &mut Channel = if *channel == 0 { &mut near } else { &mut far };
            !ch.host.try_issue(&mut ch.sim, 0, op).unwrap()
        });

        // Asynchronous clock domains: each channel advances on its own
        // divider relative to the host step (§IV.C).
        host_step += 1;
        for ch in [&mut near, &mut far] {
            if host_step.is_multiple_of(ch.clock_divider) {
                ch.sim.clock().unwrap();
            }
            ch.host.drain(&mut ch.sim).unwrap();
        }
        if host_step > 10_000_000 {
            panic!("run did not converge");
        }
    }

    println!("NUMA channels: one workload split across two HMC-Sim objects\n");
    for ch in [&near, &far] {
        println!(
            "{:<18} injected {:>7}  completed {:>7}  device cycles {:>7}  \
             mean latency {:>6.1} host steps",
            ch.name,
            ch.host.stats.injected,
            ch.host.stats.completed,
            ch.sim.current_clock(),
            ch.host.latency.mean() * ch.clock_divider as f64,
        );
    }
    let near_lat = near.host.latency.mean();
    let far_lat = far.host.latency.mean() * 2.0;
    println!(
        "\nfar channel latency ({:.1} host steps) exceeds near ({:.1}) — \
         the NUMA effect the multi-object API exists to model.",
        far_lat, near_lat
    );
    assert!(far_lat > near_lat);
    assert_eq!(
        near.host.stats.completed + far.host.stats.completed,
        100_000
    );
}
