//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes the workspace derives on:
//!
//! * structs with named fields — serialized as a JSON object whose keys
//!   are the field names in declaration order;
//! * enums whose variants all carry no data — serialized as the variant
//!   name as a JSON string (matching real serde's external tagging for
//!   unit variants).
//!
//! The only `#[serde(...)]` attribute understood is `#[serde(default)]`
//! on a struct field (a missing field deserializes to `Default::default()`).
//!
//! The input token stream is parsed by hand (no `syn`/`quote`, which are
//! unavailable offline); unsupported shapes — tuple structs, generic
//! types, data-carrying variants, other `#[serde(...)]` attributes —
//! produce a `compile_error!` naming the limitation rather than silently
//! wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we parsed out of the derive input.
enum Shape {
    /// `struct Name { field, ... }`; the flag records `#[serde(default)]`.
    Struct {
        name: String,
        fields: Vec<(String, bool)>,
    },
    /// `enum Name { Variant, ... }` (unit variants only)
    Enum { name: String, variants: Vec<String> },
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid error expansion")
}

/// Scan attributes (`#` followed by a bracket group, with an optional `!`
/// for inner attributes) starting at `i`; returns the next index and
/// whether a `#[serde(default)]` was among them. Any other `#[serde(...)]`
/// content is an error — the stand-in must not silently drop semantics it
/// does not implement.
fn scan_attrs(tokens: &[TokenTree], mut i: usize) -> Result<(usize, bool), String> {
    let mut has_default = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1;
                if matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '!') {
                    i += 1;
                }
                let group = match &tokens[i..] {
                    [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Bracket => g,
                    _ => break,
                };
                let inner: Vec<TokenTree> = group.stream().into_iter().collect();
                if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde")
                {
                    let args = match inner.get(1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            g.stream().to_string()
                        }
                        _ => return Err("malformed `#[serde]` attribute".into()),
                    };
                    if args.trim() == "default" {
                        has_default = true;
                    } else {
                        return Err(format!(
                            "serde stand-in derives support only `#[serde(default)]`, \
                             got `#[serde({args})]`"
                        ));
                    }
                }
                i += 1;
            }
            _ => break,
        }
    }
    Ok((i, has_default))
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i..], [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, container_default) = scan_attrs(&tokens, 0)?;
    if container_default {
        return Err("serde stand-in derives support `#[serde(default)]` only on \
                    struct fields, not containers"
            .into());
    }
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    if kind != "struct" && kind != "enum" {
        return Err(format!(
            "serde stand-in derives support only structs and enums, got `{kind}`"
        ));
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derives do not support generic type `{name}`"
        ));
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde stand-in derives support only brace-bodied types; `{name}` has none"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    if kind == "struct" {
        let mut fields = Vec::new();
        let mut j = 0;
        while j < body.len() {
            let (k, has_default) = scan_attrs(&body, j)?;
            j = skip_vis(&body, k);
            let field = match body.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => break,
                other => return Err(format!("expected a field name in `{name}`, got {other:?}")),
            };
            j += 1;
            if !matches!(body.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
                return Err(format!(
                    "serde stand-in derives support only named fields (struct `{name}`)"
                ));
            }
            j += 1;
            // Skip the type up to the next top-level comma. Commas inside
            // angle brackets (`HashMap<K, V>`) are tracked by depth;
            // groups are single tokens so need no tracking.
            let mut angle = 0i32;
            while j < body.len() {
                match &body[j] {
                    TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            j += 1; // past the comma (or the end)
            fields.push((field, has_default));
        }
        if fields.is_empty() {
            return Err(format!("struct `{name}` has no named fields to derive over"));
        }
        Ok(Shape::Struct { name, fields })
    } else {
        let mut variants = Vec::new();
        let mut j = 0;
        while j < body.len() {
            let (k, variant_default) = scan_attrs(&body, j)?;
            if variant_default {
                return Err(format!(
                    "serde stand-in derives support `#[serde(default)]` only on \
                     struct fields, not variants of `{name}`"
                ));
            }
            j = k;
            let variant = match body.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                None => break,
                other => {
                    return Err(format!("expected a variant name in `{name}`, got {other:?}"))
                }
            };
            j += 1;
            match body.get(j) {
                None => {}
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => j += 1,
                _ => {
                    return Err(format!(
                        "serde stand-in derives support only unit variants (enum `{name}`)"
                    ))
                }
            }
            variants.push(variant);
        }
        if variants.is_empty() {
            return Err(format!("enum `{name}` has no variants to derive over"));
        }
        Ok(Shape::Enum { name, variants })
    }
}

/// Derive `Serialize` (the vendored stand-in's trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::value::Value::String({v:?}.to_string())"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    code.parse().expect("generated impl parses")
}

/// Derive `Deserialize` (the vendored stand-in's trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|(f, has_default)| {
                    let helper = if *has_default { "field_or_default" } else { "field" };
                    format!("{f}: ::serde::de::{helper}(__fields, {f:?}, {name:?})?")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value)\n\
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         let __fields = __v.as_object().ok_or_else(|| \
                             ::serde::de::Error::custom(format!(\
                                 \"expected an object for `{name}`, got {{__v:?}}\")))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value)\n\
                         -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                         let __s = __v.as_str().ok_or_else(|| \
                             ::serde::de::Error::custom(format!(\
                                 \"expected a string for `{name}`, got {{__v:?}}\")))?;\n\
                         match __s {{\n\
                             {},\n\
                             other => Err(::serde::de::Error::custom(format!(\
                                 \"unknown `{name}` variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse().expect("generated impl parses")
}
