//! Vendored offline stand-in for the `proptest` crate.
//!
//! Runs each property as a fixed number of deterministic random cases
//! (seeded from the test's name, so failures reproduce run over run).
//! No shrinking — a failing case panics with the ordinary assert
//! message. The strategy surface covers exactly what the workspace
//! uses: integer ranges, `any::<T>()`, tuples, `Just`, `prop_oneof!`,
//! `.prop_map`, `prop::collection::vec` and `prop::sample::select`.

pub mod test_runner {
    //! The deterministic RNG cases sample from.

    /// SplitMix64: tiny, uniform, and plenty for test-case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name (FNV-1a), so every
        /// run of a given property sees the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0, "empty sampling range");
            // Modulo bias is irrelevant at test-case scale.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can produce values of its `Value` type from a
    /// deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always the same value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        alts: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from at least one alternative.
        pub fn new(alts: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one alternative");
            OneOf { alts }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].sample(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// `any::<T>()`: the type's full (bounded, for containers) domain.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy covering `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Vec<T> {
            let len = rng.below(65) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }
}

pub mod collection {
    //! Container strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec` of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// Strategy built by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// Strategy built by [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Per-property configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI fast while
        // still exercising the domain.
        ProptestConfig { cases: 64 }
    }
}

/// `prop::…` module path used by `use proptest::prelude::*` call sites.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The glob import every property-test file starts with.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(pat in strategy, …) { body }`
/// runs `cases` deterministic samples. As with real proptest, the call
/// site writes `#[test]` on each property — the macro passes attributes
/// through verbatim and adds none of its own (emitting a second
/// `#[test]` would register every property twice with libtest).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _ in 0..__cfg.cases {
                // Irrefutable let-destructuring keeps closure parameter
                // type inference out of the picture; the zero-argument
                // closure scopes `prop_assume!`'s early `return` to one
                // case instead of the whole test.
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::sample(&($strat), &mut __rng),
                )+);
                let __case_fn = || $body;
                __case_fn();
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Assert inside a property (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (stand-in: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip cases that don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::sample(&(0usize..=4), &mut rng);
            assert!(w <= 4);
            let s = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn collections_and_select_sample_their_domains() {
        let mut rng = TestRng::for_test("coll");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 1..4).sample(&mut rng);
            assert!((1..4).contains(&v.len()));
            let pick = prop::sample::select(vec![16u32, 32, 64]).sample(&mut rng);
            assert!([16, 32, 64].contains(&pick));
        }
    }

    #[test]
    fn oneof_map_and_just_compose() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
        ];
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        #[allow(clippy::eq_op)]
        fn the_macro_runs_and_assume_skips(a in 0u64..100, b in any::<bool>()) {
            prop_assume!(a != 99);
            prop_assert!(a < 99);
            prop_assert_ne!(a, 99);
            prop_assert_eq!(b, b);
        }
    }
}
