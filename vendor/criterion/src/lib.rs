//! Vendored offline stand-in for the `criterion` crate.
//!
//! A minimal-but-real timing harness exposing the API surface the
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with `sample_size`/`throughput`, `bench_function`,
//! `Bencher::iter`/`iter_batched`, and `black_box`. Each benchmark runs
//! a short warm-up then `sample_size` timed samples and prints the
//! median per-iteration time (plus throughput when configured). No
//! statistics beyond that — the numbers are honest wall-clock medians,
//! good enough for the relative comparisons EXPERIMENTS.md records.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (accepted, not acted on: the
/// stand-in always times per-batch with per-iteration setup outside the
/// timed region).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::with_capacity(sample_size);
    // One warm-up sample, discarded.
    let mut b = Bencher::default();
    f(&mut b);
    for _ in 0..sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    let rate = |per_iter: u64| -> String {
        if median <= 0.0 {
            return String::from("inf");
        }
        let per_sec = per_iter as f64 * 1e9 / median;
        format!("{per_sec:.3e}")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("{name}: {median:.1} ns/iter, {} elem/s", rate(n));
        }
        Some(Throughput::Bytes(n)) => {
            println!("{name}: {median:.1} ns/iter, {} B/s", rate(n));
        }
        None => println!("{name}: {median:.1} ns/iter"),
    }
}

/// Times the closed-over routine.
#[derive(Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over a fixed batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u64 = 16;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        const ITERS: u64 = 8;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Group benchmark functions under one registration point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_their_routines() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Elements(1));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0, "the routine must actually execute");
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            b.iter_batched(|| 7u32, |x| seen.push(x), BatchSize::SmallInput)
        });
        assert!(seen.iter().all(|&x| x == 7));
        assert!(!seen.is_empty());
    }
}
