//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the narrow serde surface it actually uses: derivable
//! [`Serialize`]/[`Deserialize`] traits over a self-describing JSON-like
//! [`value::Value`] data model. `serde_json` (vendored next door) renders
//! and parses that model as standard JSON text.
//!
//! Scope, deliberately minimal:
//!
//! * structs with named fields and enums with unit variants (derive);
//! * primitives, `String`, `Option<T>`, `Vec<T>`, fixed-size arrays and
//!   tuples of serializable values;
//! * no `#[serde(...)]` attributes, borrowed deserialization, or custom
//!   (de)serializer plumbing — the workspace uses none of them.
//!
//! The derive macros come from the companion `serde_derive` crate and
//! expand to [`Serialize::to_value`]/[`Deserialize::from_value`] impls,
//! so generated code is ordinary inspectable Rust.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing data model every serializable type lowers to.

    /// A JSON-shaped value tree. Object fields keep insertion order so
    /// emitted JSON is deterministic (field declaration order).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null` (also the encoding of `Option::None`).
        Null,
        /// JSON boolean.
        Bool(bool),
        /// JSON number.
        Number(Number),
        /// JSON string.
        String(String),
        /// JSON array.
        Array(Vec<Value>),
        /// JSON object, as ordered key/value pairs.
        Object(Vec<(String, Value)>),
    }

    /// A JSON number, preserving integer exactness beyond `f64` range.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Number {
        /// Non-negative integer literal.
        U64(u64),
        /// Negative integer literal.
        I64(i64),
        /// Fractional or exponent-form literal.
        F64(f64),
    }

    impl Value {
        /// The object fields, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Object(fields) => Some(fields),
                _ => None,
            }
        }

        /// The array elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }
    }
}

pub mod de {
    //! Deserialization error type and derive-support helpers.

    use crate::value::Value;

    /// Why a [`Value`](crate::value::Value) could not be converted into
    /// the requested type.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// An error with the given message.
        pub fn custom(message: impl Into<String>) -> Self {
            Error {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Look up `name` in an object's fields and deserialize it. Used by
    /// derived struct impls for fields without `#[serde(default)]`; a
    /// missing field is an error.
    pub fn field<T: crate::Deserialize>(
        fields: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        let v = fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` for `{ty}`")))?;
        T::from_value(v).map_err(|e| Error::custom(format!("field `{name}` of `{ty}`: {e}")))
    }

    /// Like [`field`], but a missing field yields `T::default()` — the
    /// backing for `#[serde(default)]`, which lets newer configs stay
    /// readable by their older on-disk serializations.
    pub fn field_or_default<T: crate::Deserialize + Default>(
        fields: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match fields.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
            Some(v) => T::from_value(v)
                .map_err(|e| Error::custom(format!("field `{name}` of `{ty}`: {e}"))),
            None => Ok(T::default()),
        }
    }
}

use value::{Number, Value};

/// A type that can lower itself into the [`value::Value`] data model.
pub trait Serialize {
    /// The value-tree encoding of `self`.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from the [`value::Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree, validating shape and ranges.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let wide = match v {
                    Value::Number(Number::U64(n)) => *n,
                    Value::Number(Number::I64(n)) if *n >= 0 => *n as u64,
                    Value::Number(Number::F64(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    other => {
                        return Err(de::Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let wide: i64 = match v {
                    Value::Number(Number::I64(n)) => *n,
                    Value::Number(Number::U64(n)) => i64::try_from(*n).map_err(|_| {
                        de::Error::custom(format!("integer {n} out of i64 range"))
                    })?,
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(de::Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    de::Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Number(Number::F64(f)) => Ok(*f),
            Value::Number(Number::U64(n)) => Ok(*n as f64),
            Value::Number(Number::I64(n)) => Ok(*n as f64),
            other => Err(de::Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let items = v
            .as_array()
            .ok_or_else(|| de::Error::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::value::{Number, Value};
    use super::{de, Deserialize, Serialize};

    #[test]
    fn primitives_roundtrip_through_the_value_model() {
        assert_eq!(42u16.to_value(), Value::Number(Number::U64(42)));
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn integers_check_range_on_the_way_in() {
        let big = Value::Number(Number::U64(300));
        assert!(u8::from_value(&big).is_err());
        let neg = Value::Number(Number::I64(-1));
        assert!(u64::from_value(&neg).is_err());
        assert_eq!(i64::from_value(&neg).unwrap(), -1);
    }

    #[test]
    fn options_and_vecs_nest() {
        let v: Option<Vec<u8>> = Some(vec![1, 2, 3]);
        let val = v.to_value();
        assert_eq!(
            val,
            Value::Array(vec![
                Value::Number(Number::U64(1)),
                Value::Number(Number::U64(2)),
                Value::Number(Number::U64(3)),
            ])
        );
        let back: Option<Vec<u8>> = Deserialize::from_value(&val).unwrap();
        assert_eq!(back, v);
        let none: Option<u8> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn field_lookup_reports_missing_names() {
        let obj = vec![("present".to_string(), Value::Number(Number::U64(1)))];
        assert_eq!(de::field::<u8>(&obj, "present", "T").unwrap(), 1);
        let err = de::field::<u8>(&obj, "absent", "T").unwrap_err();
        assert!(err.to_string().contains("absent"));
    }
}
