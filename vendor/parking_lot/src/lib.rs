//! Vendored offline stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` primitives exposing parking_lot's
//! poison-free API (`lock()` returns the guard directly). A lock held
//! across a panic is simply re-acquired by the next caller, matching
//! parking_lot's semantics.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn a_panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panicked holder");
    }

    #[test]
    fn rwlock_shares_readers() {
        let l = RwLock::new(5);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
        drop((r1, r2));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
