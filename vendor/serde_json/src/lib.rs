//! Vendored offline stand-in for the `serde_json` crate.
//!
//! Renders and parses standard JSON text over the vendored `serde`
//! value model. The emitter is deterministic (object keys in field
//! declaration order); the parser accepts any RFC 8259 document, so
//! files written by the real `serde_json` load unchanged.

use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching the real crate's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of the JSON document",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, ('[', ']'), items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(fields) => {
            write_seq(out, indent, depth, ('{', '}'), fields.len(), |out, i| {
                let (k, fv) = &fields[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, depth + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(x) => out.push_str(&x.to_string()),
        Number::I64(x) => out.push_str(&x.to_string()),
        Number::F64(x) if x.is_finite() => {
            // Match serde_json: always a decimal point or exponent so the
            // value re-parses as a float.
            let s = x.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // Real serde_json emits null for NaN/infinities.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of the JSON document",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {} of the JSON document",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b != b'"' && b != b'\\' && b >= 0x20 {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape in JSON string"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require the paired low half.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate in JSON string"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(
                                c.ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated JSON string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let back: Vec<u64> = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_standard_documents() {
        let doc = r#" { "a": [1, -2, 3.5e2], "b": "x\nyA", "c": null, "d": true } "#;
        let v: Value = {
            let mut p = Parser {
                bytes: doc.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value(0).unwrap()
        };
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "a");
        assert_eq!(
            fields[0].1.as_array().unwrap()[2],
            Value::Number(Number::F64(350.0))
        );
        assert_eq!(fields[1].1.as_str().unwrap(), "x\nyA");
        assert_eq!(fields[2].1, Value::Null);
        assert_eq!(fields[3].1, Value::Bool(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<bool>("troo").is_err());
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let s = to_string(&1.0f64).unwrap();
        assert_eq!(s, "1.0");
        let f: f64 = from_str(&s).unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "quote\" slash\\ tab\t nl\n ctrl\u{1} unicode\u{1F600}";
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let back: u64 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }
}
